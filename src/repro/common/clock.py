"""Clock abstractions.

The whole reproduction runs against an injected :class:`Clock` so the
discrete-event simulator can drive phones, servers and transports from a
single virtual timeline, while unit tests can freeze or step time
manually.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.common.errors import ValidationError


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float:
        """Return the current time in (fractional) seconds."""
        ...


class SystemClock:
    """Wall-clock time; used only by interactive examples."""

    def now(self) -> float:
        """Monotonic wall-clock seconds."""
        return time.monotonic()


class ManualClock:
    """A clock that only moves when told to.

    Used by unit tests and as the time source of the discrete-event
    simulation engine, which advances it to each event's timestamp.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The current manual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValidationError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def set(self, timestamp: float) -> float:
        """Jump directly to ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ValidationError(
                f"cannot move time backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)
        return self._now
