"""Deterministic randomness management.

Field-test and scheduling simulations must be exactly reproducible, so
every stochastic component draws from a named stream derived from a
single root seed. Two runs with the same root seed produce identical
traces regardless of the order in which components are constructed.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation hashes the root seed together with the names, so child
    streams are statistically independent and stable across runs and
    platforms.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RngRegistry:
    """Hands out independent, reproducible random generators by name.

    >>> registry = RngRegistry(root_seed=7)
    >>> a = registry.generator("sensors", "gps")
    >>> b = registry.generator("sensors", "gps")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, *names: str | int) -> int:
        """Return the derived seed for a named stream."""
        return derive_seed(self.root_seed, *names)

    def generator(self, *names: str | int) -> np.random.Generator:
        """Return a fresh :class:`numpy.random.Generator` for a named stream."""
        return np.random.default_rng(self.seed_for(*names))
