"""Shared foundations used by every SOR subsystem.

This package contains the pieces that the rest of the reproduction is
built on: the exception hierarchy, simulated clocks, deterministic random
number management and small validation helpers.
"""

from repro.common.clock import Clock, ManualClock, SystemClock
from repro.common.errors import (
    BarcodeError,
    CodecError,
    ConfigurationError,
    DatabaseError,
    ParticipationError,
    ReproError,
    SchedulingError,
    ScriptError,
    SensorError,
    TransportError,
    ValidationError,
)
from repro.common.rng import RngRegistry, derive_seed
from repro.common.validation import (
    require,
    require_in_range,
    require_non_empty,
    require_positive,
    require_type,
)

__all__ = [
    "BarcodeError",
    "Clock",
    "CodecError",
    "ConfigurationError",
    "DatabaseError",
    "ManualClock",
    "ParticipationError",
    "ReproError",
    "RngRegistry",
    "SchedulingError",
    "ScriptError",
    "SensorError",
    "SystemClock",
    "TransportError",
    "ValidationError",
    "derive_seed",
    "require",
    "require_in_range",
    "require_non_empty",
    "require_positive",
    "require_type",
]
