"""Small geodesy helpers shared by sensing, features and participation.

Distances here are short (places, trails), so an equirectangular local
projection around a reference latitude is accurate to well under a
metre — plenty for the participation manager's "is the user actually at
the target place" check and for curvature estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True)
class LatLon:
    """A WGS-84 coordinate pair in degrees."""

    latitude: float
    longitude: float


def haversine_m(first: LatLon, second: LatLon) -> float:
    """Great-circle distance in metres."""
    lat1 = math.radians(first.latitude)
    lat2 = math.radians(second.latitude)
    dlat = lat2 - lat1
    dlon = math.radians(second.longitude - first.longitude)
    a = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def project_local_m(point: LatLon, origin: LatLon) -> tuple[float, float]:
    """Project ``point`` to local (x=east, y=north) metres around ``origin``."""
    x = (
        math.radians(point.longitude - origin.longitude)
        * EARTH_RADIUS_M
        * math.cos(math.radians(origin.latitude))
    )
    y = math.radians(point.latitude - origin.latitude) * EARTH_RADIUS_M
    return x, y


def offset_latlon(origin: LatLon, east_m: float, north_m: float) -> LatLon:
    """Inverse of :func:`project_local_m`: move by metres from ``origin``."""
    latitude = origin.latitude + math.degrees(north_m / EARTH_RADIUS_M)
    longitude = origin.longitude + math.degrees(
        east_m / (EARTH_RADIUS_M * math.cos(math.radians(origin.latitude)))
    )
    return LatLon(latitude=latitude, longitude=longitude)
