"""Exception hierarchy for the SOR reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at a subsystem boundary while still
being able to distinguish failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad range, wrong type, empty input)."""


class ConfigurationError(ReproError):
    """A component was configured inconsistently (e.g. duplicate provider)."""


class DatabaseError(ReproError):
    """Raised by the mini relational database substrate."""


class RecoveryError(DatabaseError):
    """Durable state on disk is corrupted beyond what recovery tolerates."""


class SimulatedCrashError(ReproError):
    """An armed crash-injection hook fired (see :mod:`repro.sim.crash`).

    Deliberately *not* a :class:`TransportError`: a simulated kill must
    tear the whole process down in the harness, not be absorbed by a
    retry loop on the request path.
    """


class CodecError(ReproError):
    """Raised when encoding or decoding a binary message body fails."""


class TransportError(ReproError):
    """Raised by the simulated network transport (drops, unknown endpoints)."""


class DeadlineExceededError(TransportError):
    """A resilient send ran out of its per-request deadline."""


class CircuitOpenError(TransportError):
    """A resilient send was rejected because the host's circuit is open."""


class ServerBusyError(TransportError):
    """The server refused the request at admission (HTTP 503, BUSY envelope).

    A :class:`TransportError` on purpose: the resilient client's retry
    loop treats an overloaded server exactly like a lossy link — back
    off with jitter and try again — which is the system's backpressure
    contract.
    """


class BarcodeError(ReproError):
    """Raised when a 2D barcode cannot be encoded or decoded."""


class ScriptError(ReproError):
    """Base class for LuaLite scripting errors."""


class ScriptSyntaxError(ScriptError):
    """The script failed to lex or parse."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class ScriptRuntimeError(ScriptError):
    """The script failed during interpretation."""


class ScriptSecurityError(ScriptError):
    """The script attempted to call a function outside the whitelist."""


class SensorError(ReproError):
    """Raised by sensor providers (unknown sensor, acquisition timeout)."""


class SensorTimeoutError(SensorError):
    """Data acquisition did not complete before its deadline."""


class SchedulingError(ReproError):
    """Raised by the sensing scheduler (infeasible request, bad period)."""


class KernelValidationError(SchedulingError):
    """A coverage kernel returned an out-of-range probability.

    Off the diagonal (distance > 0) probabilities must lie in [0, 1):
    a probability of exactly 1 at nonzero distance makes the log-space
    survival state ``log1p(-p) = -inf`` and silently poisons every
    objective value downstream, so the build rejects it up front, naming
    the kernel and the offending distance.
    """


class RankingError(ReproError):
    """Raised by the personalizable ranking pipeline."""


class ParticipationError(ReproError):
    """Raised by the participation manager (location check failed, etc.)."""


class ObservabilityError(ReproError):
    """Raised by the metrics/tracing subsystem (bad metric name, misuse)."""


class AblationError(ReproError):
    """Raised by the ablation harness (unknown switch, broken equivalence)."""
