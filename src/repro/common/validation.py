"""Small argument-validation helpers.

These keep constructor bodies readable: one line per invariant, all
raising :class:`~repro.common.errors.ValidationError` with a uniform
message format.
"""

from __future__ import annotations

from collections.abc import Sized
from typing import Any, TypeVar

from repro.common.errors import ValidationError

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def require_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict bounds) and return it."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        raise ValidationError(
            f"{name} must be in [{low}, {high}]"
            f"{'' if inclusive else ' (exclusive)'}, got {value!r}"
        )
    return value


def require_non_empty(value: Sized, name: str) -> Sized:
    """Require a non-empty sized collection and return it."""
    if len(value) == 0:
        raise ValidationError(f"{name} must not be empty")
    return value


def require_type(value: Any, expected: type[T], name: str) -> T:
    """Require ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
