"""Command-line interface: reproduce any paper artefact from the shell.

Usage::

    python -m repro table1            # Table I rankings
    python -m repro fig14a --runs 10  # Fig. 14(a) sweep
    python -m repro all               # everything, in paper order
    python -m repro obs               # end-to-end run + metrics dump
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.experiments.fig6_trail_features import format_fig6, run_fig6
from repro.experiments.fig10_shop_features import format_fig10, run_fig10
from repro.experiments.fig14_scheduling import (
    format_sweep,
    run_fig14a,
    run_fig14b,
)
from repro.experiments.table1_trail_rankings import format_table1, run_table1
from repro.experiments.table2_shop_rankings import format_table2, run_table2


def _cmd_fig6(args: argparse.Namespace) -> str:
    return format_fig6(run_fig6(seed=args.seed))


def _cmd_fig10(args: argparse.Namespace) -> str:
    return format_fig10(run_fig10(seed=args.seed))


def _cmd_table1(args: argparse.Namespace) -> str:
    return format_table1(run_table1(seed=args.seed))


def _cmd_table2(args: argparse.Namespace) -> str:
    return format_table2(run_table2(seed=args.seed))


def _cmd_fig14a(args: argparse.Namespace) -> str:
    return format_sweep(
        run_fig14a(runs=args.runs, seed=args.seed),
        f"Fig. 14(a) — coverage vs users ({args.runs} runs/point)",
    )


def _cmd_fig14b(args: argparse.Namespace) -> str:
    return format_sweep(
        run_fig14b(runs=args.runs, seed=args.seed),
        f"Fig. 14(b) — coverage vs budget ({args.runs} runs/point)",
    )


def _cmd_obs(args: argparse.Namespace) -> str:
    """Run the end-to-end experiment and dump the metrics registry.

    The whole protocol (participation, scheduling, uploads, decoding,
    ranking) runs against the process-global registry, so the dump shows
    every instrumented subsystem with real traffic behind it.
    """
    from repro.experiments.end_to_end import run_end_to_end
    from repro.obs import get_metrics, to_dict, to_prometheus_text

    run_end_to_end(seed=args.seed, phones_per_shop=3, budget=10)
    registry = get_metrics()
    if args.format == "json":
        return json.dumps(to_dict(registry), indent=2, sort_keys=True)
    return to_prometheus_text(registry)


def _cmd_rank(args: argparse.Namespace) -> str:
    """Run the coffee-shop deployment and serve rankings twice.

    The first pass runs the full Algorithm 2 pipeline and fills the
    versioned ranking cache; the second pass repeats the same batch
    query and is served entirely from the cache, which the trailing
    stats line makes visible.
    """
    import numpy as np

    from repro.server import SORSystem
    from repro.sim.scenarios import (
        customer_profiles,
        shop_feature_pipeline,
        syracuse_coffee_shops,
    )

    system = SORSystem(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    for shop in syracuse_coffee_shops(rng):
        system.deploy_place(shop, shop_feature_pipeline())
        for _ in range(3):
            system.deploy_phone(shop.place_id, budget=10)
    system.run()
    profiles = customer_profiles()
    system.process_and_rank("coffee_shop", profiles)
    reports = system.server.ranker.rank_many("coffee_shop", profiles)
    names = {
        place_id: deployed.place.name
        for place_id, deployed in system.places.items()
    }
    lines = ["Personalizable rankings — coffee_shop"]
    for profile_name, report in reports.items():
        placed = " > ".join(names[place] for place in report.ranking.items)
        lines.append(
            f"{profile_name:<8}{placed}   "
            f"(footrule {report.weighted_footrule:.1f}, "
            f"kemeny {report.weighted_kemeny:.1f})"
        )
    cache = system.server.ranking_cache
    lines.append(
        f"data_version {system.server.ranker.data_version('coffee_shop')}; "
        f"cache: {cache.hits} hits, {cache.misses} misses, "
        f"{cache.evictions} evictions"
    )
    return "\n".join(lines)


def _cmd_crash(args: argparse.Namespace) -> str:
    """Run the crash-injection scenario and report what survived.

    With durability on (the default) the report should end ``data
    intact``; pass ``--no-durability`` to watch the same kills destroy
    acknowledged state.
    """
    import tempfile

    from repro.sim.crash import CrashSpec, run_crash_scenario

    spec = CrashSpec(
        kills=args.kills, seed=args.seed, durability=not args.no_durability
    )
    if args.durability_dir is not None:
        report = run_crash_scenario(spec, args.durability_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="sor-crash-") as tmp:
            report = run_crash_scenario(spec, tmp)
    lines = [
        f"kills executed      : {report.kills_executed}",
        f"acked schedules     : {report.acked_schedules}"
        f" (lost {report.lost_acked_schedules})",
        f"acked uploads       : {report.acked_uploads}"
        f" (lost {report.lost_acked_uploads})",
        f"duplicate tasks     : {report.duplicate_tasks}",
        f"duplicate uploads   : {report.duplicate_uploads}",
        f"WAL records replayed: {report.records_replayed}",
        f"verdict             : data {'intact' if report.data_intact else 'LOST'}",
    ]
    return "\n".join(lines)


def _cmd_loadgen(args: argparse.Namespace) -> str:
    """Drive the in-process sensing server with a reproducible load mix.

    ``--mode compare`` runs the same seeded workload through the
    concurrent server and the single-threaded baseline and reports the
    throughput ratio — the number the CI load gate asserts on.
    """
    from repro.sim.loadgen import (
        LoadgenSpec,
        format_report,
        run_comparison,
        run_loadgen,
    )

    if args.places:
        places = args.places
    else:
        # Auto-size: the spec requires places to be a multiple of
        # categories with at least two places per category to rank.
        per_category = max(2, -(-8 // args.categories))
        places = per_category * args.categories
    spec = LoadgenSpec(
        phones=args.phones,
        seed=args.seed,
        mode="concurrent" if args.mode == "compare" else args.mode,
        clients=args.clients,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        io_delay_s=args.io_delay_ms / 1000.0,
        places=places,
        shards=args.shards,
        replicas=args.replicas,
        categories=args.categories,
    )
    if args.mode == "compare":
        concurrent, sequential, speedup = run_comparison(spec)
        if args.format == "json":
            return json.dumps(
                {
                    "concurrent": concurrent.to_dict(),
                    "sequential": sequential.to_dict(),
                    "speedup": speedup,
                },
                indent=2,
                sort_keys=True,
            )
        return "\n\n".join(
            [
                format_report(concurrent),
                format_report(sequential),
                f"concurrent/sequential speedup: {speedup:.2f}x",
            ]
        )
    report = run_loadgen(spec)
    if args.format == "json":
        return json.dumps(report.to_dict(), indent=2, sort_keys=True)
    return format_report(report)


def _cmd_ablate(args: argparse.Namespace) -> str:
    """Run the leave-one-out ablation matrix and rank the components.

    ``--out`` additionally writes the canonical gate document
    (``ablation_effect_<switch>`` metrics) that
    ``benchmarks/compare_bench.py`` checks against the committed
    baseline; ``--invert SWITCH`` deliberately swaps that switch's
    baseline/ablated values so its measured importance inverts — the CI
    job uses it to prove the gate fails when a component stops winning.
    """
    from pathlib import Path

    from repro.ablation import (
        AblationSpec,
        default_registry,
        render,
        run_ablation,
        to_bench_json,
    )

    registry = default_registry()
    if args.invert:
        registry = registry.inverted(args.invert)
    components = (
        tuple(name.strip() for name in args.components.split(",") if name.strip())
        if args.components
        else None
    )
    report = run_ablation(
        AblationSpec(seed=args.seed, repeat=args.repeat, components=components),
        registry=registry,
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(to_bench_json(report), indent=2, sort_keys=True) + "\n"
        )
    fmt = "table" if args.format == "text" else args.format
    return render(report, fmt)


def _cmd_shardchaos(args: argparse.Namespace) -> str:
    """Kill shard primaries mid-run (repeatedly) and audit acked data.

    Drives the loadgen protocol mix through the shard router under a
    lossy network and runs ``--kills`` kill→promote→reseed cycles: the
    first hard-kills ``--kill-shard``'s primary and durably promotes
    its WAL-fed replica; with ``--kills 2`` or more, the second kill
    hits the *same shard again* — the freshly promoted primary — and
    lands mid-reseed via a crash hook; later kills walk the remaining
    shards. Ends by killing the victim's promoted primary once more and
    recovering it from its re-attached WAL, then reports whether every
    acked schedule and upload survived.
    """
    from repro.sim.shard_chaos import (
        ShardChaosSpec,
        format_shard_chaos_report,
        run_shard_chaos,
    )

    spec = ShardChaosSpec(
        phones=args.phones if args.phones != 10000 else 120,
        shards=args.shards if args.shards > 1 else 4,
        replicas=max(args.replicas, 1),
        categories=args.categories if args.categories > 1 else 8,
        seed=args.seed,
        kill_shard=args.kill_shard,
        kills=args.kills,
    )
    report = run_shard_chaos(spec)
    if not report.data_intact:
        # CI runs this as a gate: acked data loss must fail the job.
        print(format_shard_chaos_report(report), file=sys.stderr)
        raise SystemExit(1)
    if args.format == "json":
        payload = dict(vars(report))
        payload.pop("metrics")
        payload["data_intact"] = report.data_intact
        return json.dumps(payload, indent=2, sort_keys=True)
    return format_shard_chaos_report(report)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig6": _cmd_fig6,
    "table1": _cmd_table1,
    "fig10": _cmd_fig10,
    "table2": _cmd_table2,
    "fig14a": _cmd_fig14a,
    "fig14b": _cmd_fig14b,
    "obs": _cmd_obs,
    "rank": _cmd_rank,
    "crash": _cmd_crash,
    "loadgen": _cmd_loadgen,
    "shardchaos": _cmd_shardchaos,
    "ablate": _cmd_ablate,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the SOR paper's tables and figures.",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(_COMMANDS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--seed", type=int, default=2014, help="root random seed (default 2014)"
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=10,
        help="runs per sweep point for fig14a/fig14b (paper: 10)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "table"),
        default="text",
        help="output format for the obs/ablate commands ('text' means "
        "'table' for ablate; default: text)",
    )
    parser.add_argument(
        "--kills",
        type=int,
        default=2,
        help="server kills for the crash command / kill-promote-reseed "
        "cycles for shardchaos (default 2)",
    )
    parser.add_argument(
        "--durability-dir",
        default=None,
        help="where the crash command keeps WAL + checkpoints "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--no-durability",
        action="store_true",
        help="run the crash command without the durability layer "
        "(demonstrates data loss)",
    )
    parser.add_argument(
        "--phones",
        type=int,
        default=10000,
        help="phone population for the loadgen command (default 10000)",
    )
    parser.add_argument(
        "--mode",
        choices=("concurrent", "sequential", "compare"),
        default="concurrent",
        help="loadgen execution mode; 'compare' runs both and reports "
        "the speedup (default: concurrent)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="loadgen driver threads (default 8)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="server worker pool size for loadgen (default 8)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="server admission queue bound for loadgen (default 64)",
    )
    parser.add_argument(
        "--io-delay-ms",
        type=float,
        default=0.2,
        help="simulated per-request socket/disk milliseconds for "
        "loadgen (default 0.2)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count for loadgen/shardchaos; loadgen with more "
        "than 1 drives a ShardCluster through its router (default 1)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="read-replicas per shard for sharded loadgen/shardchaos "
        "(default 1)",
    )
    parser.add_argument(
        "--categories",
        type=int,
        default=1,
        help="rankable categories the places split into for "
        "loadgen/shardchaos (default 1)",
    )
    parser.add_argument(
        "--places",
        type=int,
        default=0,
        help="places for loadgen (0 = auto: at least 8, grown so every "
        "category keeps two rankable places)",
    )
    parser.add_argument(
        "--kill-shard",
        type=int,
        default=1,
        help="index of the shard whose primary shardchaos kills "
        "(default 1)",
    )
    parser.add_argument(
        "--components",
        default=None,
        help="comma-separated switch subset for the ablate command "
        "(default: every registered switch)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="timed repetitions per benchmark cell for ablate, "
        "best-of (default 2)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the canonical BENCH_ablation.json gate "
        "document here (ablate command)",
    )
    parser.add_argument(
        "--invert",
        default=None,
        metavar="SWITCH",
        help="swap SWITCH's baseline/ablated values to demonstrate an "
        "importance inversion failing the gate (ablate command)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.artefact == "all":
        names = ["fig6", "table1", "fig10", "table2", "fig14a", "fig14b"]
    else:
        names = [args.artefact]
    for name in names:
        if len(names) > 1:
            print(f"\n{'=' * 20} {name} {'=' * 20}")
        # Scheduling figures use seed 0 by convention unless overridden.
        if name.startswith("fig14") and args.seed == 2014:
            args_for = argparse.Namespace(**{**vars(args), "seed": 0})
        else:
            args_for = args
        print(_COMMANDS[name](args_for))
    return 0
