"""SOR — a reproduction of "SOR: An Objective Ranking System Based on
Mobile Phone Sensing" (Sheng, Tang, Wang, Gao, Xue — IEEE ICDCS 2014).

Top-level layout:

* :mod:`repro.core` — the paper's algorithms (scheduling, ranking,
  feature extraction),
* :mod:`repro.phone` / :mod:`repro.server` — the mobile frontend and
  sensing server,
* :mod:`repro.script` — LuaLite, the sensing-task scripting language,
* :mod:`repro.sensors`, :mod:`repro.net`, :mod:`repro.db`,
  :mod:`repro.barcode`, :mod:`repro.sim` — the substrates,
* :mod:`repro.experiments` — one module per paper table/figure,
* ``python -m repro <artefact>`` — regenerate any of them from the shell.
"""

__version__ = "1.0.0"
