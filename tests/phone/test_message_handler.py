"""Tests for PhoneMessageHandler: failure accounting and inbound dedupe."""

import numpy as np

from repro.common.clock import ManualClock
from repro.net import Envelope, HttpRequest, HttpResponse, MessageType, NetworkConditions
from repro.net.transport import Network
from repro.phone.message_handler import PhoneMessageHandler
from repro.phone.power import Battery, WakeLockManager


class ScriptedServer:
    """Serves whatever HttpResponse the test scripted, recording requests."""

    def __init__(self, response=None):
        self.response = response
        self.requests = []

    def handle_request(self, request):
        self.requests.append(request)
        if self.response is not None:
            return self.response
        envelope = Envelope.from_bytes(request.body)
        return HttpResponse(status=200, body=envelope.reply(MessageType.ACK).to_bytes())


def make_handler(server=None, **conditions):
    network = Network(
        conditions=NetworkConditions(**conditions), rng=np.random.default_rng(0)
    )
    server = server if server is not None else ScriptedServer()
    network.register("server", server)
    clock = ManualClock()
    handler = PhoneMessageHandler(
        "phone-t1", network, WakeLockManager(clock, Battery())
    )
    network.register("phone-t1", handler)
    return handler, server


def make_envelope(**payload):
    return Envelope(
        message_type=MessageType.PREFERENCES,
        sender="phone-t1",
        recipient="server",
        payload=payload or {"user_id": "u1"},
    )


class TestSendAccounting:
    def test_successful_exchange_counts_clean(self):
        handler, _ = make_handler()
        reply = handler.send("server", make_envelope())
        assert reply is not None and reply.message_type is MessageType.ACK
        assert handler.messages_sent == 1
        assert handler.messages_failed == 0

    def test_transport_drop_counts_failed(self):
        handler, _ = make_handler(drop_probability=1.0)
        assert handler.send("server", make_envelope()) is None
        assert handler.messages_failed == 1

    def test_http_rejected_response_counts_failed(self):
        """Regression: a 5xx used to return None without touching
        messages_failed, so sent − failed over-counted successes."""
        handler, _ = make_handler(server=ScriptedServer(HttpResponse(status=503)))
        assert handler.send("server", make_envelope()) is None
        assert handler.messages_sent == 1
        assert handler.messages_failed == 1

    def test_empty_body_response_counts_failed(self):
        handler, _ = make_handler(
            server=ScriptedServer(HttpResponse(status=200, body=b""))
        )
        assert handler.send("server", make_envelope()) is None
        assert handler.messages_failed == 1

    def test_outbound_envelopes_are_stamped_with_content_key(self):
        handler, server = make_handler()
        envelope = make_envelope()
        handler.send("server", envelope)
        sent = Envelope.from_bytes(server.requests[0].body)
        assert sent.idempotency_key == envelope.content_key()

    def test_caller_provided_key_is_preserved(self):
        handler, server = make_handler()
        handler.send("server", make_envelope().with_idempotency_key("nonce-1"))
        assert Envelope.from_bytes(server.requests[0].body).idempotency_key == "nonce-1"


class TestInboundDedupe:
    def make_request(self, envelope):
        return HttpRequest("POST", "phone-t1", "/sor", envelope.to_bytes())

    def test_duplicate_envelope_acked_but_not_reapplied(self):
        handler, _ = make_handler()
        seen = []
        handler.on(MessageType.PING, lambda env: seen.append(env) or env.reply(
            MessageType.PONG, {"n": len(seen)}
        ))
        ping = Envelope(
            MessageType.PING, "server", "phone-t1", {}
        ).with_idempotency_key("push-1")
        first = handler.handle_request(self.make_request(ping))
        second = handler.handle_request(self.make_request(ping))
        assert len(seen) == 1  # the handler ran once
        assert second.body == first.body  # the original reply was replayed
        assert handler.duplicates_ignored == 1

    def test_distinct_keys_both_dispatch(self):
        handler, _ = make_handler()
        seen = []
        handler.on(MessageType.PING, lambda env: seen.append(env) or None)
        base = Envelope(MessageType.PING, "server", "phone-t1", {})
        handler.handle_request(self.make_request(base.with_idempotency_key("a")))
        handler.handle_request(self.make_request(base.with_idempotency_key("b")))
        assert len(seen) == 2
        assert handler.duplicates_ignored == 0

    def test_unstamped_envelopes_are_never_deduped(self):
        handler, _ = make_handler()
        seen = []
        handler.on(MessageType.PING, lambda env: seen.append(env) or None)
        plain = Envelope(MessageType.PING, "server", "phone-t1", {})
        handler.handle_request(self.make_request(plain))
        handler.handle_request(self.make_request(plain))
        assert len(seen) == 2
