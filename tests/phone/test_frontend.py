"""Tests for the MobilePhone frontend against a live (test) server."""

import numpy as np
import pytest

from repro.barcode import PlacePayload, encode_place_barcode
from repro.common.clock import ManualClock
from repro.common.geo import LatLon, offset_latlon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import CloudMessenger, NetworkConditions
from repro.net.transport import Network
from repro.phone import MobilePhone
from repro.phone.task import TaskStatus
from repro.sensors import ScalarProvider, SensorKind, SensorSpec
from repro.server import SensingServer
from repro.server.app_manager import Application

PLACE = LatLon(43.05, -76.15)


@pytest.fixture
def world():
    clock = ManualClock(start=100.0)
    network = Network(
        conditions=NetworkConditions(drop_probability=0.0),
        rng=np.random.default_rng(0),
    )
    gcm = CloudMessenger()
    server = SensingServer("server", network, clock, gcm=gcm)
    server.register_user("alice", "Alice", "tok-a")
    server.create_application(
        Application(
            app_id="app-1",
            creator="owner",
            place_id="place-1",
            place_name="Place One",
            category="coffee_shop",
            location=PLACE,
            script="return get_temperature_readings(3, 1.0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    phone = MobilePhone(
        user_id="alice", token="tok-a", network=network, clock=clock, gcm=gcm
    )
    phone.set_location_source(lambda t: PLACE)
    spec = SensorSpec("temperature", SensorKind.EXTERNAL, "F", freshness_s=0.0)
    phone.add_provider(
        ScalarProvider(spec, clock, np.random.default_rng(1), lambda t: 70.0)
    )
    barcode = encode_place_barcode(
        PlacePayload(
            place_id="place-1",
            name="Place One",
            category="coffee_shop",
            latitude=PLACE.latitude,
            longitude=PLACE.longitude,
            app_id="app-1",
            server_host="server",
        )
    )
    return clock, network, gcm, server, phone, barcode


class TestScan:
    def test_scan_creates_task_with_schedule(self, world):
        clock, _, _, _, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=5)
        assert task is not None
        assert len(task.sensing_times) == 5
        assert all(t >= clock.now() for t in task.sensing_times)

    def test_rescan_returns_new_task(self, world):
        *_, phone, barcode = world
        first = phone.scan_barcode(barcode, budget=3)
        second = phone.scan_barcode(barcode, budget=3)
        assert first is not None and second is not None
        assert first.task_id != second.task_id

    def test_scan_far_away_rejected(self, world):
        *_, phone, barcode = world
        far = offset_latlon(PLACE, east_m=50_000.0, north_m=0.0)
        phone.set_location_source(lambda t: far)
        assert phone.scan_barcode(barcode, budget=3) is None

    def test_departure_time_limits_schedule(self, world):
        clock, *_, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=50, departure_time=2_000.0)
        assert task is not None
        assert all(t <= 2_000.0 for t in task.sensing_times)


class TestSensingAndUpload:
    def run_to_completion(self, clock, phone, task):
        for sense_time in list(task.sensing_times):
            if sense_time > clock.now():
                clock.set(sense_time)
            phone.tick()
        clock.advance(1.0)
        phone.tick()

    def test_full_task_lifecycle(self, world):
        clock, _, _, server, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=4)
        self.run_to_completion(clock, phone, task)
        assert task.status is TaskStatus.FINISHED
        assert len(task.bursts) == 4
        assert server.database.table("raw_data").count() == 1
        server.process_data()
        features = server.compute_all_features()
        assert features["place-1"]["temperature"] == pytest.approx(70.0, abs=1.0)

    def test_upload_happens_once(self, world):
        clock, network, _, server, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=2)
        self.run_to_completion(clock, phone, task)
        phone.tick()
        phone.tick()
        assert server.database.table("raw_data").count() == 1

    def test_battery_drains_from_sensing_and_radio(self, world):
        clock, *_, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=3)
        self.run_to_completion(clock, phone, task)
        drained = phone.battery.drained_by
        assert drained.get("sense:temperature", 0) > 0
        assert drained.get("radio:upload", 0) > 0

    def test_denied_sensor_fails_task_and_reports_error(self, world):
        clock, _, _, server, phone, barcode = world
        phone.preferences.deny("temperature")
        task = phone.scan_barcode(barcode, budget=2)
        self.run_to_completion(clock, phone, task)
        assert task.status is TaskStatus.ERROR
        assert "preferences" in task.error
        stored = server.participation.get_task(task.task_id)
        assert stored["status"] == "error"

    def test_dead_phone_stops_ticking(self, world):
        clock, *_, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=2)
        phone.battery.drain(phone.battery.capacity_mj, reason="test")
        clock.set(task.sensing_times[0])
        assert phone.tick() == 0


class TestServerInitiated:
    def test_location_query_answered(self, world):
        _, _, _, server, phone, _ = world
        server._phone_hosts["tok-a"] = phone.host
        location = server.query_phone_location("tok-a")
        assert location is not None
        assert location.latitude == pytest.approx(PLACE.latitude)

    def test_http_ping_answered(self, world):
        _, _, _, server, phone, _ = world
        server._phone_hosts["tok-a"] = phone.host
        assert server.ping_phone("tok-a")

    def test_gcm_recovery_when_host_lost(self, world):
        """The paper's lost-phone path: stale HTTP host → GCM push →
        phone PONGs → server re-learns the host."""
        _, network, _, server, phone, _ = world
        server._phone_hosts["tok-a"] = "phone-old-address"  # stale
        assert server.ping_phone("tok-a")  # HTTP fails, GCM succeeds
        assert server._phone_hosts["tok-a"] == phone.host

    def test_server_pushes_schedule_to_phone(self, world):
        """The scheduler's distribution path: a phone that never got the
        PARTICIPATE reply still receives its schedule via server push."""
        clock, _, _, server, phone, _ = world
        server._phone_hosts["tok-a"] = phone.host
        # Server creates and schedules a task without the phone knowing.
        task_id = server.participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host=phone.host, location=PLACE, budget=3,
        )
        application = server.apps.get("app-1")
        server.scheduler.schedule_task(application, task_id, budget=3)
        assert phone.task_manager.get(task_id) is None
        assert server.push_schedule(task_id)
        task = phone.task_manager.get(task_id)
        assert task is not None
        assert len(task.sensing_times) == 3
        # Pushing again is idempotent.
        assert server.push_schedule(task_id)
        assert len(phone.task_manager.all_tasks()) == 1

    def test_push_schedule_unknown_task(self, world):
        *_, server, _, _ = world
        assert not server.push_schedule("ghost-task")

    def test_preferences_pushed_to_server(self, world):
        _, _, _, server, phone, _ = world
        phone.preferences.deny("gps")
        assert phone.send_preferences("server")
        assert server.users.denied_sensors("alice") == ["gps"]


class TestMultiTaskSharing:
    def test_two_tasks_share_provider_buffer(self, world):
        """The paper's energy story: a provider's buffer serves multiple
        tasks, so concurrent acquisitions can reuse fresh readings."""
        clock, *_, phone, barcode = world
        # Make the provider's readings reusable for 60 s.
        provider = phone.provider_register.provider("temperature")
        object.__setattr__(provider.spec, "freshness_s", 60.0)
        first = phone.scan_barcode(barcode, budget=2)
        second = phone.scan_barcode(barcode, budget=2)
        assert first is not None and second is not None
        merged = sorted(set(first.sensing_times) | set(second.sensing_times))
        for sense_time in merged:
            if sense_time > clock.now():
                clock.set(sense_time)
            phone.tick()
        clock.advance(1.0)
        phone.tick()
        # Both tasks completed and the provider reused buffered readings
        # whenever two acquisitions landed within the freshness window.
        assert first.is_done and second.is_done
        assert provider.samples_taken > 0
