"""Tests for the mobile frontend components."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ConfigurationError, SensorError, ValidationError
from repro.phone import (
    Battery,
    LocalPreferenceManager,
    ProviderRegister,
    SensorManager,
    TaskInstance,
    TaskManager,
    TaskStatus,
    WakeLockManager,
)
from repro.sensors import ScalarProvider, SensorKind, SensorSpec


def make_provider(clock, sensor_type="light", value=500.0, energy=2.0):
    spec = SensorSpec(
        sensor_type, SensorKind.EMBEDDED, "lux",
        energy_per_sample_mj=energy, freshness_s=0.0,
    )
    return ScalarProvider(spec, clock, np.random.default_rng(0), lambda t: value)


def make_sensor_stack(clock=None, battery=None):
    clock = clock or ManualClock()
    battery = battery or Battery()
    register = ProviderRegister()
    register.register(make_provider(clock))
    preferences = LocalPreferenceManager()
    manager = SensorManager(register, preferences, battery)
    return manager, register, preferences, battery, clock


class TestPreferences:
    def test_default_allows_everything(self):
        assert LocalPreferenceManager().is_allowed("gps")

    def test_deny_and_allow(self):
        prefs = LocalPreferenceManager()
        prefs.deny("gps")
        assert not prefs.is_allowed("gps")
        prefs.allow("gps")
        assert prefs.is_allowed("gps")

    def test_payload(self):
        prefs = LocalPreferenceManager()
        prefs.deny("gps")
        prefs.deny("microphone")
        assert prefs.to_payload() == {"denied": ["gps", "microphone"]}


class TestBattery:
    def test_drain_and_level(self):
        battery = Battery(capacity_mj=100.0)
        battery.drain(25.0, reason="test")
        assert battery.remaining_mj == 75.0
        assert battery.level == 0.75
        assert battery.drained_by == {"test": 25.0}

    def test_clamps_at_zero(self):
        battery = Battery(capacity_mj=10.0)
        battery.drain(50.0, reason="greedy")
        assert battery.remaining_mj == 0.0
        assert battery.is_dead

    def test_negative_drain_rejected(self):
        with pytest.raises(ValidationError):
            Battery().drain(-1.0, reason="x")


class TestWakeLocks:
    def test_held_time_drains_battery(self):
        clock = ManualClock()
        battery = Battery(capacity_mj=1000.0)
        locks = WakeLockManager(clock, battery, drain_mw=10.0)
        locks.acquire("comm")
        clock.advance(5.0)
        locks.release("comm")
        assert battery.remaining_mj == pytest.approx(950.0)
        assert locks.total_held_s == 5.0

    def test_reentrant(self):
        clock = ManualClock()
        battery = Battery()
        locks = WakeLockManager(clock, battery)
        locks.acquire("a")
        locks.acquire("a")
        locks.release("a")
        assert locks.is_held
        locks.release("a")
        assert not locks.is_held

    def test_release_unheld_rejected(self):
        locks = WakeLockManager(ManualClock(), Battery())
        with pytest.raises(ValidationError):
            locks.release("ghost")


class TestProviderRegister:
    def test_register_and_lookup(self):
        clock = ManualClock()
        register = ProviderRegister()
        register.register(make_provider(clock))
        assert register.supported_sensors() == ["light"]
        assert register.provider("light").spec.sensor_type == "light"

    def test_duplicate_rejected(self):
        clock = ManualClock()
        register = ProviderRegister()
        register.register(make_provider(clock))
        with pytest.raises(ConfigurationError):
            register.register(make_provider(clock))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(SensorError):
            ProviderRegister().provider("ghost")

    def test_acquisition_function_names(self):
        register = ProviderRegister()
        assert register.acquisition_function_name("light") == "get_light_readings"
        assert register.acquisition_function_name("gps") == "get_location"

    def test_unregister(self):
        clock = ManualClock()
        register = ProviderRegister()
        register.register(make_provider(clock))
        register.unregister("light")
        assert register.supported_sensors() == []
        with pytest.raises(ConfigurationError):
            register.unregister("light")


class TestSensorManager:
    def test_acquire_burst_charges_battery(self):
        manager, _, _, battery, _ = make_sensor_stack()
        manager.acquire_burst("light", 3, 0.1)
        assert battery.capacity_mj - battery.remaining_mj == pytest.approx(6.0)

    def test_denied_sensor_raises(self):
        manager, _, preferences, _, _ = make_sensor_stack()
        preferences.deny("light")
        with pytest.raises(SensorError, match="preferences"):
            manager.acquire_burst("light", 1, 0.0)

    def test_dead_battery_raises(self):
        battery = Battery(capacity_mj=1.0)
        battery.drain(1.0, reason="pre")
        manager, *_ = make_sensor_stack(battery=battery)
        with pytest.raises(SensorError, match="battery"):
            manager.acquire_burst("light", 1, 0.0)

    def test_script_bindings_record_and_return(self):
        manager, *_ = make_sensor_stack()
        recorded = []
        bindings = manager.script_bindings(
            lambda sensor, burst: recorded.append((sensor, burst))
        )
        values = bindings["get_light_readings"](3, 0.1)
        assert values == [500.0, 500.0, 500.0]
        assert recorded[0][0] == "light"
        assert len(recorded[0][1].values) == 3


SCRIPT = """
local readings = get_light_readings(4, 0.5)
local total = 0
for i = 1, #readings do total = total + readings[i] end
return {mean = total / #readings}
"""


class TestTaskInstance:
    def make_task(self, times, script=SCRIPT, clock=None):
        manager, *_ = make_sensor_stack(clock=clock)
        return TaskInstance(
            task_id="t1",
            app_id="app",
            script_source=script,
            sensing_times=times,
            sensor_manager=manager,
        )

    def test_executes_due_instants(self):
        task = self.make_task([10.0, 20.0, 30.0])
        assert task.execute_due(15.0) == 1
        assert task.status is TaskStatus.RUNNING
        assert task.execute_due(100.0) == 2
        assert task.status is TaskStatus.FINISHED
        assert len(task.script_results) == 3

    def test_collects_bursts(self):
        task = self.make_task([10.0])
        task.execute_due(10.0)
        assert len(task.bursts) == 1
        sensor, burst = task.bursts[0]
        assert sensor == "light"
        assert len(burst.values) == 4

    def test_nothing_due_executes_nothing(self):
        task = self.make_task([100.0])
        assert task.execute_due(50.0) == 0

    def test_script_error_marks_error(self):
        task = self.make_task([10.0], script="return undefined_fn()")
        task.execute_due(10.0)
        assert task.status is TaskStatus.ERROR
        assert "not whitelisted" in task.error

    def test_empty_schedule_is_finished(self):
        task = self.make_task([])
        assert task.status is TaskStatus.FINISHED

    def test_collected_payload_wire_form(self):
        task = self.make_task([10.0])
        task.execute_due(10.0)
        payload = task.collected_payload()
        assert payload[0]["sensor"] == "light"
        assert isinstance(payload[0]["values"][0], float)

    def test_next_sensing_time(self):
        task = self.make_task([10.0, 20.0])
        assert task.next_sensing_time() == 10.0
        task.execute_due(10.0)
        assert task.next_sensing_time() == 20.0
        task.execute_due(20.0)
        assert task.next_sensing_time() is None


class TestTaskManager:
    def test_tracks_and_executes(self):
        clock = ManualClock()
        manager_stack, *_ = make_sensor_stack(clock=clock)
        tasks = TaskManager()
        first = TaskInstance("t1", "a", SCRIPT, [5.0], manager_stack)
        second = TaskInstance("t2", "a", SCRIPT, [7.0, 9.0], manager_stack)
        tasks.add(first)
        tasks.add(second)
        assert tasks.next_sensing_time() == 5.0
        assert tasks.execute_due(8.0) == 2
        assert tasks.next_sensing_time() == 9.0
        assert len(tasks.active_tasks()) == 1

    def test_duplicate_id_rejected(self):
        manager_stack, *_ = make_sensor_stack()
        tasks = TaskManager()
        tasks.add(TaskInstance("t1", "a", SCRIPT, [], manager_stack))
        with pytest.raises(ConfigurationError):
            tasks.add(TaskInstance("t1", "a", SCRIPT, [], manager_stack))

    def test_finished_unreported(self):
        manager_stack, *_ = make_sensor_stack()
        tasks = TaskManager()
        task = TaskInstance("t1", "a", SCRIPT, [1.0], manager_stack)
        tasks.add(task)
        assert tasks.finished_unreported() == []
        tasks.execute_due(2.0)
        assert tasks.finished_unreported() == [task]
