"""Tests for acquisition timeouts and slow sensors."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import SensorError, SensorTimeoutError
from repro.phone import Battery, LocalPreferenceManager, ProviderRegister, SensorManager
from repro.sensors import ScalarProvider, SensorKind, SensorSpec


def make_manager(*, response_delay_s=0.0, default_timeout_s=120.0):
    clock = ManualClock()
    spec = SensorSpec(
        "gps_like",
        SensorKind.EMBEDDED,
        "u",
        energy_per_sample_mj=5.0,
        default_timeout_s=default_timeout_s,
    )
    provider = ScalarProvider(
        spec,
        clock,
        np.random.default_rng(0),
        lambda t: 1.0,
        response_delay_s=response_delay_s,
    )
    register = ProviderRegister()
    register.register(provider)
    battery = Battery()
    manager = SensorManager(register, LocalPreferenceManager(), battery)
    return manager, provider, battery


class TestEstimatedDuration:
    def test_instant_sensor(self):
        _, provider, _ = make_manager()
        assert provider.estimated_duration_s(5, 2.0) == 8.0

    def test_slow_sensor_adds_delay(self):
        _, provider, _ = make_manager(response_delay_s=30.0)
        assert provider.estimated_duration_s(1, 0.0) == 30.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SensorError):
            make_manager(response_delay_s=-1.0)


class TestTimeoutEnforcement:
    def test_fast_acquisition_allowed(self):
        manager, _, _ = make_manager()
        burst = manager.acquire_burst("gps_like", 5, 1.0)
        assert len(burst.values) == 5

    def test_slow_acquisition_cancelled(self):
        manager, _, _ = make_manager(response_delay_s=200.0)
        with pytest.raises(SensorTimeoutError, match="cancelled"):
            manager.acquire_burst("gps_like", 1, 0.0)
        assert manager.acquisitions_cancelled == 1

    def test_long_burst_cancelled_by_explicit_timeout(self):
        manager, _, _ = make_manager()
        with pytest.raises(SensorTimeoutError):
            manager.acquire_burst("gps_like", 100, 2.0, timeout_s=60.0)

    def test_cancelled_acquisition_costs_no_energy(self):
        manager, _, battery = make_manager(response_delay_s=500.0)
        with pytest.raises(SensorTimeoutError):
            manager.acquire_burst("gps_like", 1, 0.0)
        assert battery.remaining_mj == battery.capacity_mj

    def test_explicit_timeout_overrides_default(self):
        manager, _, _ = make_manager(response_delay_s=50.0, default_timeout_s=10.0)
        # Default would cancel; an explicit generous timeout allows it.
        burst = manager.acquire_burst("gps_like", 1, 0.0, timeout_s=100.0)
        assert len(burst.values) == 1

    def test_slow_sensor_timestamps_shifted_by_delay(self):
        manager, provider, _ = make_manager(response_delay_s=5.0)
        burst = manager.acquire_burst("gps_like", 2, 1.0)
        assert burst.timestamp == 5.0  # first reading lands after the delay

    def test_timeout_failure_fails_script_task(self):
        """A cancelled acquisition surfaces as a task error, like any
        sensor failure."""
        from repro.phone.task import TaskInstance, TaskStatus

        manager, _, _ = make_manager(response_delay_s=500.0)
        task = TaskInstance(
            task_id="t",
            app_id="a",
            script_source="return get_gps_like_readings(1, 0)",
            sensing_times=[0.0],
            sensor_manager=manager,
        )
        task.execute_due(0.0)
        assert task.status is TaskStatus.ERROR
        assert "cancelled" in task.error
