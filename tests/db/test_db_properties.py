"""Property-based tests for the mini database."""

from hypothesis import given, settings, strategies as st

from repro.db import Column, ColumnType, Schema, Table, eq

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)


def fresh_table() -> Table:
    return Table(
        Schema(
            name="t",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("key", ColumnType.TEXT, nullable=False),
                Column("score", ColumnType.INT),
            ),
            primary_key="id",
        )
    )


@given(
    rows=st.lists(
        st.tuples(names, st.integers(-100, 100)), min_size=0, max_size=40
    )
)
def test_indexed_select_equals_scan(rows):
    """A hash index must never change SELECT results."""
    plain = fresh_table()
    indexed = fresh_table()
    indexed.create_index("key")
    for key, score in rows:
        plain.insert({"key": key, "score": score})
        indexed.insert({"key": key, "score": score})
    keys = {key for key, _ in rows} | {"missing"}
    for key in keys:
        scan = sorted(row["id"] for row in plain.select(eq("key", key)))
        fast = sorted(row["id"] for row in indexed.select(eq("key", key)))
        assert scan == fast


@settings(max_examples=50)
@given(
    operations=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), names, st.integers(-5, 5)),
            st.tuples(st.just("delete"), names, st.integers(-5, 5)),
            st.tuples(st.just("update"), names, st.integers(-5, 5)),
        ),
        max_size=60,
    )
)
def test_index_consistency_under_mutation(operations):
    """Interleaved writes keep index and scan results identical."""
    table = fresh_table()
    table.create_index("key")
    seen_keys = set()
    for op, key, score in operations:
        seen_keys.add(key)
        if op == "insert":
            table.insert({"key": key, "score": score})
        elif op == "delete":
            table.delete(eq("key", key))
        else:
            table.update(eq("key", key), {"score": score})
    for key in seen_keys:
        via_index = table.select(eq("key", key))
        via_scan = [row for row in table.select() if row["key"] == key]
        assert sorted(row["id"] for row in via_index) == sorted(
            row["id"] for row in via_scan
        )


@given(
    committed=st.lists(st.tuples(names, st.integers()), max_size=10),
    aborted=st.lists(st.tuples(names, st.integers()), max_size=10),
)
def test_transaction_atomicity(committed, aborted):
    """Nothing from an aborted transaction is ever visible."""
    from repro.db import Database

    db = Database()
    db.create_table(
        Schema(
            name="t",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("key", ColumnType.TEXT, nullable=False),
                Column("score", ColumnType.INT),
            ),
            primary_key="id",
        )
    )
    for key, score in committed:
        db.table("t").insert({"key": key, "score": score})
    before = db.table("t").select()
    try:
        with db.transaction():
            for key, score in aborted:
                db.table("t").insert({"key": key, "score": score})
            raise RuntimeError("abort")
    except RuntimeError:
        pass
    assert db.table("t").select() == before
