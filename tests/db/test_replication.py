"""Tests for repro.db.replication: WAL shipping for read-replicas."""

import pytest

from repro.common.errors import DatabaseError, RecoveryError
from repro.db import (
    Column,
    ColumnType,
    Database,
    DurabilityConfig,
    Schema,
)
from repro.db.replication import (
    ReplicationCursor,
    WalShipper,
    apply_records,
    bootstrap_database,
)
from repro.db.wal import open_durable_database
from repro.obs import MetricsRegistry


def boot(tmp_path, **config_kwargs):
    db, report = open_durable_database(
        DurabilityConfig(directory=tmp_path, fsync=False, **config_kwargs),
        metrics=MetricsRegistry(),
    )
    return db, report


USERS = Schema(
    name="users",
    columns=(
        Column("user_id", ColumnType.INT, nullable=False),
        Column("name", ColumnType.TEXT),
    ),
    primary_key="user_id",
)


def make_users(db, count, start=0):
    if not db.has_table("users"):
        db.create_table(USERS)
    for index in range(start, start + count):
        db.table("users").insert({"user_id": index, "name": f"user-{index}"})


def replica_of(batch, metrics=None):
    """Apply one shipped batch to a fresh (or bootstrapped) database."""
    if batch.snapshot is not None:
        database = bootstrap_database(batch.snapshot, metrics=metrics)
    else:
        database = Database(name="replica", metrics=metrics or MetricsRegistry())
    apply_records(database, batch.records)
    return database


class TestCursor:
    def test_defaults_point_at_start_of_history(self):
        cursor = ReplicationCursor()
        assert (cursor.seq, cursor.offset) == (1, 0)

    @pytest.mark.parametrize("kwargs", [{"seq": 0}, {"offset": -1}])
    def test_invalid_cursor_rejected(self, kwargs):
        with pytest.raises(DatabaseError):
            ReplicationCursor(**kwargs)


class TestShipping:
    def test_full_history_rebuilds_identical_tables(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 5)
        batch = WalShipper(tmp_path).ship(ReplicationCursor())
        replica = replica_of(batch)
        assert replica.table("users").select() == db.table("users").select()

    def test_incremental_ship_returns_only_new_records(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 3)
        shipper = WalShipper(tmp_path)
        first = shipper.ship(ReplicationCursor())
        assert first.records  # DDL + three inserts
        # Nothing new: the advanced cursor ships an empty batch.
        again = shipper.ship(first.cursor)
        assert again.records == []
        assert again.cursor == first.cursor
        make_users(db, 2, start=3)
        delta = shipper.ship(first.cursor)
        assert len(delta.records) == 2
        assert all(record["op"] == "insert" for record in delta.records)

    def test_pending_counts_lag(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 2)
        shipper = WalShipper(tmp_path)
        cursor = shipper.ship(ReplicationCursor()).cursor
        assert shipper.pending(cursor) == 0
        make_users(db, 4, start=2)
        assert shipper.pending(cursor) == 4

    def test_transactions_ship_atomically(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 1)
        shipper = WalShipper(tmp_path)
        cursor = shipper.ship(ReplicationCursor()).cursor
        with db.transaction():
            db.table("users").insert({"user_id": 10, "name": "a"})
            db.table("users").insert({"user_id": 11, "name": "b"})
        batch = shipper.ship(cursor)
        assert len(batch.records) == 2

    def test_uncommitted_tail_is_held_back(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 1)
        shipper = WalShipper(tmp_path)
        cursor = shipper.ship(ReplicationCursor()).cursor
        db.durability.simulate_partial_transaction(
            [
                {
                    "op": "insert",
                    "table": "users",
                    "row": {"user_id": 99, "name": "ghost"},
                }
            ]
        )
        batch = shipper.ship(cursor)
        # The unacked transaction must never reach a replica.
        assert batch.records == []
        # The cursor stays on the transaction boundary so a later commit
        # marker would be picked up from the transaction's start.
        assert batch.cursor == cursor

    def test_empty_directory_ships_nothing(self, tmp_path):
        batch = WalShipper(tmp_path / "nope").ship(ReplicationCursor())
        assert batch.records == [] and batch.snapshot is None


class TestBootstrap:
    def test_pruned_history_bootstraps_from_checkpoint(self, tmp_path):
        db, _ = boot(tmp_path, checkpoint_every_records=3, keep_checkpoints=1)
        make_users(db, 10)  # auto-checkpoints prune early segments
        assert not (tmp_path / "wal-00000001.log").exists()
        batch = WalShipper(tmp_path).ship(ReplicationCursor())
        assert batch.snapshot is not None
        replica = replica_of(batch)
        assert replica.table("users").select() == db.table("users").select()

    def test_stale_cursor_follows_through_snapshot(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 2)
        shipper = WalShipper(tmp_path)
        stale = shipper.ship(ReplicationCursor()).cursor
        db.durability.checkpoint()
        db.durability.checkpoint()  # prunes the segment `stale` points at
        make_users(db, 2, start=2)
        batch = shipper.ship(stale)
        assert batch.snapshot is not None
        replica = replica_of(batch)
        assert replica.table("users").select() == db.table("users").select()

    def test_unreachable_history_raises(self, tmp_path):
        db, _ = boot(tmp_path, keep_checkpoints=1)
        make_users(db, 2)
        db.durability.checkpoint()
        db.durability.checkpoint()  # history now starts past segment 1
        for checkpoint in tmp_path.glob("checkpoint-*.json"):
            checkpoint.unlink()
        with pytest.raises(RecoveryError, match="cannot catch up"):
            WalShipper(tmp_path).ship(ReplicationCursor())


class TestBootstrapCall:
    """WalShipper.bootstrap(): the re-seed fast path."""

    def test_no_checkpoint_starts_from_history(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 3)
        snapshot, cursor = WalShipper(tmp_path).bootstrap()
        assert snapshot is None
        assert cursor == ReplicationCursor(seq=1, offset=0)
        db.durability.close()

    def test_missing_directory_starts_from_history(self, tmp_path):
        snapshot, cursor = WalShipper(tmp_path / "nope").bootstrap()
        assert snapshot is None
        assert cursor == ReplicationCursor(seq=1, offset=0)

    def test_newest_checkpoint_plus_tail_matches_primary(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 3)
        db.durability.checkpoint()
        make_users(db, 2, start=3)  # the tail past the checkpoint
        shipper = WalShipper(tmp_path)
        snapshot, cursor = shipper.bootstrap()
        assert snapshot is not None
        assert cursor == ReplicationCursor(seq=2, offset=0)
        replica = bootstrap_database(snapshot, metrics=MetricsRegistry())
        assert replica.table("users").count() == 3
        apply_records(replica, shipper.ship(cursor).records)
        assert replica.table("users").select() == db.table("users").select()
        db.durability.close()

    def test_unreadable_checkpoint_raises(self, tmp_path):
        db, _ = boot(tmp_path)
        make_users(db, 3)
        db.durability.checkpoint()
        db.durability.close()
        (tmp_path / "checkpoint-00000002.json").write_bytes(b"{broken")
        with pytest.raises(RecoveryError, match="unreadable"):
            WalShipper(tmp_path).bootstrap()


class TestShippingRaces:
    def test_vanished_segment_is_a_typed_error(self, tmp_path, monkeypatch):
        """A segment pruned between scan and read must surface as
        RecoveryError (which the pump retries), not a raw OSError."""
        db, _ = boot(tmp_path)
        make_users(db, 3)
        db.durability.close()
        import repro.db.replication as replication_module

        def gone(path):
            raise FileNotFoundError(f"{path} pruned concurrently")

        monkeypatch.setattr(replication_module, "read_wal_file", gone)
        with pytest.raises(RecoveryError, match="unreadable"):
            WalShipper(tmp_path).ship(ReplicationCursor())
