"""Tests for repro.db.database (DDL + transactions)."""

import pytest

from repro.common.errors import DatabaseError
from repro.db import Column, ColumnType, Database, Schema, eq


def schema(name="t"):
    return Schema(
        name=name,
        columns=(
            Column("id", ColumnType.INT, nullable=False, auto_increment=True),
            Column("value", ColumnType.TEXT),
        ),
        primary_key="id",
    )


class TestDdl:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(schema())
        assert db.has_table("t")
        assert db.table("t").name == "t"

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table(schema())
        with pytest.raises(DatabaseError):
            db.create_table(schema())

    def test_drop(self):
        db = Database()
        db.create_table(schema())
        db.drop_table("t")
        assert not db.has_table("t")

    def test_drop_missing_rejected(self):
        with pytest.raises(DatabaseError):
            Database().drop_table("nope")

    def test_unknown_table_lookup_rejected(self):
        with pytest.raises(DatabaseError):
            Database().table("nope")

    def test_table_names_sorted(self):
        db = Database()
        db.create_table(schema("b"))
        db.create_table(schema("a"))
        assert db.table_names() == ["a", "b"]


class TestTransactions:
    def test_commit_keeps_changes(self):
        db = Database()
        db.create_table(schema())
        with db.transaction():
            db.table("t").insert({"value": "x"})
        assert len(db.table("t")) == 1

    def test_rollback_restores_all_tables(self):
        db = Database()
        db.create_table(schema("a"))
        db.create_table(schema("b"))
        db.table("a").insert({"value": "before"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("a").insert({"value": "during"})
                db.table("b").insert({"value": "during"})
                raise RuntimeError("abort")
        assert len(db.table("a")) == 1
        assert len(db.table("b")) == 0
        assert db.table("a").select()[0]["value"] == "before"

    def test_rollback_restores_auto_counter(self):
        db = Database()
        db.create_table(schema())
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("t").insert({"value": "x"})
                raise RuntimeError()
        assert db.table("t").insert({"value": "y"}) == 1

    def test_rollback_drops_tables_created_inside(self):
        db = Database()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.create_table(schema("fresh"))
                raise RuntimeError()
        assert not db.has_table("fresh")

    def test_rollback_restores_indexes(self):
        db = Database()
        db.create_table(schema())
        db.table("t").create_index("value")
        db.table("t").insert({"value": "keep"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("t").insert({"value": "gone"})
                raise RuntimeError()
        assert [r["value"] for r in db.table("t").select(eq("value", "keep"))] == [
            "keep"
        ]
        assert db.table("t").select(eq("value", "gone")) == []

    def test_transactions_do_not_nest(self):
        db = Database()
        with db.transaction():
            with pytest.raises(DatabaseError):
                with db.transaction():
                    pass

    def test_exception_propagates(self):
        db = Database()
        with pytest.raises(ValueError):
            with db.transaction():
                raise ValueError("boom")
