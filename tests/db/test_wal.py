"""Tests for the write-ahead log, checkpoints and crash recovery."""

import pytest

from repro.common.errors import (
    DatabaseError,
    RecoveryError,
    SimulatedCrashError,
)
from repro.db import (
    Column,
    ColumnType,
    Database,
    DurabilityConfig,
    Schema,
    attach_durability,
    eq,
    open_durable_database,
)
from repro.db.replication import ReplicationCursor, WalShipper, apply_records
from repro.db.wal import WalWriter, read_wal_file
from repro.obs import MetricsRegistry

SCHEMA = Schema(
    name="events",
    columns=(
        Column("id", ColumnType.INT, nullable=False, auto_increment=True),
        Column("label", ColumnType.TEXT),
        Column("blob", ColumnType.BLOB),
    ),
    primary_key="id",
)


def boot(tmp_path, **config_kwargs):
    db, report = open_durable_database(
        DurabilityConfig(directory=tmp_path, **config_kwargs)
    )
    if "events" not in db.table_names():
        db.create_table(SCHEMA)
    return db, report


def shutdown(db):
    """Simulated kill: close the WAL handle without any graceful flush."""
    db.durability.close()


class TestFraming:
    def test_records_roundtrip_through_frames(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        writer = WalWriter(path)
        records = [
            {"op": "insert", "table": "t", "row": {"id": 1, "label": "a"}},
            {"op": "delete", "table": "t", "pk": 1},
        ]
        for record in records:
            writer.append(record)
        writer.close()
        entries, clean_bytes, torn = read_wal_file(path)
        assert [record for record, _, _ in entries] == records
        assert clean_bytes == path.stat().st_size
        assert not torn

    def test_flipped_byte_stops_the_parse(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        writer = WalWriter(path)
        writer.append({"op": "insert", "table": "t", "row": {}})
        writer.append({"op": "delete", "table": "t", "pk": 1})
        writer.close()
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # corrupt the second record's payload
        path.write_bytes(data)
        entries, _, torn = read_wal_file(path)
        assert len(entries) == 1  # CRC catches the flip
        assert torn

    def test_short_frame_is_torn(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        writer = WalWriter(path)
        writer.append({"op": "insert", "table": "t", "row": {}})
        writer.append_torn({"op": "insert", "table": "t", "row": {}})
        writer.close()
        entries, _, torn = read_wal_file(path)
        assert len(entries) == 1
        assert torn


class TestRecovery:
    def test_autocommit_writes_survive_reopen(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "hello", "blob": b"\x00\xff"})
        shutdown(db)
        recovered, report = boot(tmp_path)
        assert recovered.table("events").select() == db.table("events").select()
        assert report.records_replayed >= 2  # create_table + insert
        assert report.clean_boot

    def test_committed_transaction_survives(self, tmp_path):
        db, _ = boot(tmp_path)
        with db.transaction():
            db.table("events").insert({"label": "a", "blob": None})
            db.table("events").insert({"label": "b", "blob": None})
        shutdown(db)
        recovered, _ = boot(tmp_path)
        assert recovered.table("events").count() == 2

    def test_rolled_back_transaction_leaves_no_trace(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "keep", "blob": None})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("events").insert({"label": "doomed", "blob": None})
                raise RuntimeError("abort")
        shutdown(db)
        recovered, _ = boot(tmp_path)
        labels = [row["label"] for row in recovered.table("events").select()]
        assert labels == ["keep"]

    def test_update_and_delete_replay(self, tmp_path):
        db, _ = boot(tmp_path)
        pk = db.table("events").insert({"label": "v1", "blob": None})
        db.table("events").insert({"label": "victim", "blob": None})
        db.table("events").update(eq("id", pk), {"label": "v2"})
        db.table("events").delete(eq("label", "victim"))
        shutdown(db)
        recovered, _ = boot(tmp_path)
        rows = recovered.table("events").select()
        assert len(rows) == 1
        assert rows[0]["label"] == "v2"

    def test_auto_counter_restored(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.table("events").insert({"label": "b", "blob": None})
        db.table("events").delete(eq("label", "b"))  # frees id 2
        shutdown(db)
        recovered, _ = boot(tmp_path)
        assert recovered.table("events").insert({"label": "c"}) == 3

    def test_torn_tail_is_truncated_and_discarded(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "acked", "blob": None})
        db.durability.simulate_torn_append(
            {"op": "insert", "table": "events", "row": {"id": 9, "label": "torn"}}
        )
        shutdown(db)
        recovered, report = boot(tmp_path)
        labels = [row["label"] for row in recovered.table("events").select()]
        assert labels == ["acked"]
        assert report.torn_tail_bytes_discarded > 0
        assert not report.clean_boot
        # The truncation is physical: a second reopen is clean.
        shutdown(recovered)
        _, second = boot(tmp_path)
        assert second.clean_boot

    def test_uncommitted_transaction_tail_is_discarded(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "acked", "blob": None})
        db.durability.simulate_partial_transaction(
            [{"op": "insert", "table": "events", "row": {"id": 9, "label": "x"}}]
        )
        shutdown(db)
        recovered, report = boot(tmp_path)
        labels = [row["label"] for row in recovered.table("events").select()]
        assert labels == ["acked"]
        assert report.incomplete_transactions_discarded == 1
        # Later writes append cleanly after the truncation point.
        recovered.table("events").insert({"label": "later", "blob": None})
        shutdown(recovered)
        final, final_report = boot(tmp_path)
        assert final_report.clean_boot
        labels = [row["label"] for row in final.table("events").select()]
        assert labels == ["acked", "later"]

    def test_empty_directory_boots_fresh(self, tmp_path):
        db, report = boot(tmp_path)
        assert report.checkpoint_seq == 0
        assert report.records_replayed == 0
        assert db.table("events").count() == 0

    def test_closed_manager_rejects_writes(self, tmp_path):
        db, _ = boot(tmp_path)
        shutdown(db)
        with pytest.raises(DatabaseError, match="closed"):
            db.table("events").insert({"label": "late", "blob": None})


class TestCheckpoints:
    def test_checkpoint_then_recover_without_replaying_history(self, tmp_path):
        db, _ = boot(tmp_path)
        for index in range(5):
            db.table("events").insert({"label": f"row-{index}", "blob": None})
        db.durability.checkpoint()
        shutdown(db)
        recovered, report = boot(tmp_path)
        assert recovered.table("events").count() == 5
        assert report.checkpoint_seq == 2
        assert report.records_replayed == 0  # all state came from the snapshot

    def test_auto_checkpoint_and_pruning(self, tmp_path):
        db, _ = boot(tmp_path, checkpoint_every_records=3, keep_checkpoints=2)
        for index in range(12):
            db.table("events").insert({"label": f"row-{index}", "blob": None})
        shutdown(db)
        checkpoints = sorted(p.name for p in tmp_path.glob("checkpoint-*.json"))
        wals = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        assert len(checkpoints) == 2  # older ones pruned
        # No WAL segment older than the oldest kept checkpoint survives.
        oldest_kept = int(checkpoints[0].split("-")[1].split(".")[0])
        assert all(
            int(name.split("-")[1].split(".")[0]) >= oldest_kept for name in wals
        )
        recovered, _ = boot(tmp_path)
        assert recovered.table("events").count() == 12

    def test_corrupt_latest_checkpoint_degrades_to_previous(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        db.table("events").insert({"label": "b", "blob": None})
        db.durability.checkpoint()
        db.table("events").insert({"label": "c", "blob": None})
        shutdown(db)
        newest = max(tmp_path.glob("checkpoint-*.json"))
        newest.write_text("{garbage")
        recovered, report = boot(tmp_path)
        assert report.corrupt_checkpoints_skipped == 1
        assert report.wal_files_replayed >= 2  # replays from the older snapshot
        labels = sorted(row["label"] for row in recovered.table("events").select())
        assert labels == ["a", "b", "c"]

    def test_all_checkpoints_corrupt_without_full_wal_raises(self, tmp_path):
        db, _ = boot(tmp_path, keep_checkpoints=1)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        db.durability.checkpoint()  # prunes wal-1: history now starts at 2
        shutdown(db)
        for checkpoint in tmp_path.glob("checkpoint-*.json"):
            checkpoint.write_text("{garbage")
        with pytest.raises(RecoveryError):
            boot(tmp_path)

    def test_missing_wal_segment_raises(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        db.table("events").insert({"label": "b", "blob": None})
        shutdown(db)
        # The checkpoint pruned wal-1; without checkpoint-2 the surviving
        # wal-2 no longer connects to the beginning of history.
        (tmp_path / "checkpoint-00000002.json").unlink()
        with pytest.raises(RecoveryError, match="gap|missing"):
            boot(tmp_path)

    def test_checkpoint_during_transaction_is_refused(self, tmp_path):
        db, _ = boot(tmp_path)
        with db.transaction():
            db.table("events").insert({"label": "a", "blob": None})
            with pytest.raises(DatabaseError, match="transaction"):
                db.durability.checkpoint()


class TestCrashHooks:
    def test_crash_before_checkpoint_rename_keeps_old_state(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.arm("checkpoint.pre_replace")
        with pytest.raises(SimulatedCrashError):
            db.durability.checkpoint()
        shutdown(db)
        # The new checkpoint never landed; replay covers everything.
        recovered, report = boot(tmp_path)
        assert report.checkpoint_seq == 0
        labels = [row["label"] for row in recovered.table("events").select()]
        assert labels == ["a"]

    def test_crash_after_checkpoint_rename_uses_new_checkpoint(self, tmp_path):
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.arm("checkpoint.post_replace")
        with pytest.raises(SimulatedCrashError):
            db.durability.checkpoint()
        shutdown(db)
        recovered, report = boot(tmp_path)
        assert report.checkpoint_seq == 2
        labels = [row["label"] for row in recovered.table("events").select()]
        assert labels == ["a"]

    def test_crash_before_sync_still_replays_the_write(self, tmp_path):
        # The writer is unbuffered, so the OS already has the frame; a
        # simulated in-process kill after append cannot take it back.
        db, _ = boot(tmp_path)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.arm("commit.pre_sync")
        with pytest.raises(SimulatedCrashError):
            db.table("events").insert({"label": "b", "blob": None})
        shutdown(db)
        recovered, _ = boot(tmp_path)
        labels = [row["label"] for row in recovered.table("events").select()]
        assert "a" in labels

    def test_hooks_are_one_shot(self, tmp_path):
        db, _ = boot(tmp_path)
        db.durability.arm("commit.pre_append")
        with pytest.raises(SimulatedCrashError):
            db.table("events").insert({"label": "a", "blob": None})
        db.table("events").insert({"label": "b", "blob": None})  # fires clean

    def test_disarm_removes_the_hook(self, tmp_path):
        db, _ = boot(tmp_path)
        db.durability.arm("commit.pre_append")
        db.durability.disarm("commit.pre_append")
        db.table("events").insert({"label": "a", "blob": None})


class TestMetrics:
    def test_wal_and_recovery_metrics_emitted(self, tmp_path):
        registry = MetricsRegistry()
        db, _ = open_durable_database(
            DurabilityConfig(directory=tmp_path), metrics=registry
        )
        db.create_table(SCHEMA)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        records = registry.counter("sor_db_wal_records_total", labels=("op",))
        assert records.value(op="insert") == 1
        assert records.value(op="create_table") == 1
        assert registry.counter("sor_db_wal_bytes").value() > 0
        assert registry.counter("sor_db_checkpoints_total").value() == 1
        shutdown(db)

        reopened_registry = MetricsRegistry()
        _, report = open_durable_database(
            DurabilityConfig(directory=tmp_path), metrics=reopened_registry
        )
        replayed = reopened_registry.counter("sor_db_recovery_replayed_records")
        assert replayed.value() == report.records_replayed


def _wreck_generation_one(tmp_path):
    """A killed primary's directory: 4 committed rows, then wreckage
    (an uncommitted transaction and a torn frame at the tail)."""
    db, _ = boot(tmp_path)
    table = db.table("events")
    for index in range(4):
        table.insert({"label": f"pre-{index}", "blob": None})
    manager = db.durability
    manager.simulate_partial_transaction(
        [{"op": "insert", "table": "events", "row": {"label": "doomed"}}]
    )
    manager.simulate_torn_append(
        {"op": "insert", "table": "events", "row": {"label": "torn"}}
    )
    manager.close()


def _replay_into_replica(tmp_path):
    """What failover does: rebuild a database purely from shipped WAL."""
    replica = Database(name="replica")
    batch = WalShipper(tmp_path).ship(ReplicationCursor())
    apply_records(replica, batch.records)
    return replica


class TestReattach:
    def test_attach_to_fresh_directory(self, tmp_path):
        database = Database(name="fresh")
        database.create_table(SCHEMA)
        database.table("events").insert({"label": "pre", "blob": None})
        manager = attach_durability(database, tmp_path, fsync=False)
        assert manager.seq == 1
        assert (tmp_path / "checkpoint-00000001.json").exists()
        assert (tmp_path / "wal-00000001.log").exists()
        database.table("events").insert({"label": "post", "blob": None})
        manager.close()
        reopened, report = open_durable_database(
            DurabilityConfig(directory=tmp_path)
        )
        labels = sorted(r["label"] for r in reopened.table("events").select())
        assert labels == ["post", "pre"]
        assert report.clean_boot and report.checkpoint_seq == 1
        shutdown(reopened)

    def test_attach_over_killed_generation(self, tmp_path):
        """The failover shape: replica replay of a wrecked directory,
        then attach — the inherited tail is sanitized, the state becomes
        checkpoint 2, and commits resume in generation 2."""
        _wreck_generation_one(tmp_path)
        replica = _replay_into_replica(tmp_path)
        assert len(replica.table("events").select()) == 4
        manager = attach_durability(replica, tmp_path, fsync=False)
        assert manager.seq == 2
        # The inherited segment was physically truncated to its
        # committed prefix: no torn bytes, no uncommitted transaction.
        entries, clean, torn = read_wal_file(tmp_path / "wal-00000001.log")
        assert not torn
        assert all(e[0].get("op") != "begin" for e in entries)
        replica.table("events").insert({"label": "gen2", "blob": None})
        manager.close()
        reopened, report = open_durable_database(
            DurabilityConfig(directory=tmp_path)
        )
        labels = sorted(r["label"] for r in reopened.table("events").select())
        assert labels == ["gen2", "pre-0", "pre-1", "pre-2", "pre-3"]
        assert report.clean_boot and report.checkpoint_seq == 2
        shutdown(reopened)

    def test_shipping_crosses_the_generation_boundary(self, tmp_path):
        """A replica whose cursor predates the re-attach keeps working:
        the sanitized old generation replays straight into the new one."""
        _wreck_generation_one(tmp_path)
        replica = _replay_into_replica(tmp_path)
        manager = attach_durability(replica, tmp_path, fsync=False)
        replica.table("events").insert({"label": "gen2", "blob": None})
        manager.close()
        follower = Database(name="follower")
        batch = WalShipper(tmp_path).ship(ReplicationCursor())
        apply_records(follower, batch.records)
        labels = sorted(r["label"] for r in follower.table("events").select())
        assert labels == ["gen2", "pre-0", "pre-1", "pre-2", "pre-3"]
        assert batch.cursor.seq == 2

    def test_mixed_generation_recovery_with_torn_final_record(self, tmp_path):
        """Satellite: pre-kill segments + re-attach checkpoint +
        post-promotion segment whose final record is torn."""
        _wreck_generation_one(tmp_path)
        replica = _replay_into_replica(tmp_path)
        manager = attach_durability(replica, tmp_path, fsync=False)
        replica.table("events").insert({"label": "gen2", "blob": None})
        manager.simulate_torn_append(
            {"op": "insert", "table": "events", "row": {"label": "torn2"}}
        )
        manager.close()
        reopened, report = open_durable_database(
            DurabilityConfig(directory=tmp_path)
        )
        labels = sorted(r["label"] for r in reopened.table("events").select())
        assert labels == ["gen2", "pre-0", "pre-1", "pre-2", "pre-3"]
        assert report.checkpoint_seq == 2
        assert report.torn_tail_bytes_discarded > 0
        shutdown(reopened)

    def test_corrupt_reattach_checkpoint_degrades_to_previous_generation(
        self, tmp_path
    ):
        """Satellite: attach prunes nothing, so when its checkpoint is
        corrupt, recovery degrades to replaying the full pre-kill
        history plus the post-promotion segments."""
        _wreck_generation_one(tmp_path)
        replica = _replay_into_replica(tmp_path)
        manager = attach_durability(replica, tmp_path, fsync=False)
        replica.table("events").insert({"label": "gen2", "blob": None})
        manager.close()
        (tmp_path / "checkpoint-00000002.json").write_bytes(b"{not json")
        reopened, report = open_durable_database(
            DurabilityConfig(directory=tmp_path)
        )
        labels = sorted(r["label"] for r in reopened.table("events").select())
        assert labels == ["gen2", "pre-0", "pre-1", "pre-2", "pre-3"]
        assert report.corrupt_checkpoints_skipped == 1
        assert report.checkpoint_seq == 0  # full-history replay
        assert report.wal_files_replayed == 2
        shutdown(reopened)

    def test_attach_refuses_double_attach(self, tmp_path):
        db, _ = boot(tmp_path)
        with pytest.raises(DatabaseError, match="already has durability"):
            attach_durability(db, tmp_path)
        shutdown(db)

    def test_attach_refuses_mid_transaction(self, tmp_path):
        database = Database(name="txn")
        database.create_table(SCHEMA)
        with pytest.raises(DatabaseError, match="active transaction"):
            with database.transaction():
                database.table("events").insert({"label": "a", "blob": None})
                attach_durability(database, tmp_path)

    def test_attach_counts_reattach_metric(self, tmp_path):
        registry = MetricsRegistry()
        database = Database(name="m", metrics=registry)
        database.create_table(SCHEMA)
        manager = attach_durability(
            database, tmp_path, fsync=False, metrics=registry
        )
        assert registry.counter("sor_db_wal_reattach_total").value() == 1
        manager.close()


class TestDirectoryFsync:
    def _record_calls(self, monkeypatch):
        import repro.db.wal as wal_module

        calls = []
        monkeypatch.setattr(
            wal_module, "fsync_directory", lambda path: calls.append(path)
        )
        return calls

    def test_segment_and_checkpoint_creation_sync_the_directory(
        self, tmp_path, monkeypatch
    ):
        calls = self._record_calls(monkeypatch)
        db, _ = boot(tmp_path, fsync=True)
        assert len(calls) == 1  # the first segment's directory entry
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        # + the new segment's creation, + the checkpoint os.replace
        assert len(calls) == 3
        shutdown(db)

    def test_reattach_syncs_the_directory(self, tmp_path, monkeypatch):
        calls = self._record_calls(monkeypatch)
        database = Database(name="d")
        database.create_table(SCHEMA)
        manager = attach_durability(database, tmp_path, fsync=True)
        # Segment creation and the checkpoint rename both hit the dirfd.
        assert len(calls) == 2
        manager.close()

    def test_fsync_off_never_touches_the_directory_fd(
        self, tmp_path, monkeypatch
    ):
        calls = self._record_calls(monkeypatch)
        db, _ = boot(tmp_path, fsync=False)
        db.table("events").insert({"label": "a", "blob": None})
        db.durability.checkpoint()
        shutdown(db)
        database = Database(name="d2")
        database.create_table(SCHEMA)
        attach_durability(database, tmp_path / "other", fsync=False).close()
        assert calls == []
