"""Tests for repro.db.schema."""

import pytest

from repro.common.errors import DatabaseError, ValidationError
from repro.db import Column, ColumnType, Schema


def make_schema(**overrides):
    defaults = dict(
        name="t",
        columns=(
            Column("id", ColumnType.INT, nullable=False),
            Column("label", ColumnType.TEXT),
        ),
        primary_key="id",
    )
    defaults.update(overrides)
    return Schema(**defaults)


class TestColumnType:
    @pytest.mark.parametrize(
        "column_type,value",
        [
            (ColumnType.INT, 3),
            (ColumnType.REAL, 2.5),
            (ColumnType.TEXT, "x"),
            (ColumnType.BOOL, True),
            (ColumnType.BLOB, b"\x00"),
            (ColumnType.JSON, {"a": [1]}),
        ],
    )
    def test_accepts_matching_values(self, column_type, value):
        assert column_type.validate(value) == value

    def test_int_rejects_bool(self):
        with pytest.raises(DatabaseError):
            ColumnType.INT.validate(True)

    def test_real_coerces_int(self):
        assert ColumnType.REAL.validate(3) == 3.0
        assert isinstance(ColumnType.REAL.validate(3), float)

    def test_real_rejects_bool(self):
        with pytest.raises(DatabaseError):
            ColumnType.REAL.validate(False)

    def test_blob_accepts_bytearray(self):
        assert ColumnType.BLOB.validate(bytearray(b"ab")) == b"ab"

    def test_none_passes_through(self):
        assert ColumnType.TEXT.validate(None) is None

    @pytest.mark.parametrize(
        "column_type,bad",
        [
            (ColumnType.INT, "1"),
            (ColumnType.TEXT, 1),
            (ColumnType.BOOL, 1),
            (ColumnType.BLOB, "s"),
        ],
    )
    def test_rejects_mismatched(self, column_type, bad):
        with pytest.raises(DatabaseError):
            column_type.validate(bad)


class TestColumn:
    def test_auto_increment_requires_int(self):
        with pytest.raises(ValidationError):
            Column("x", ColumnType.TEXT, auto_increment=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Column("", ColumnType.INT)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValidationError):
            make_schema(
                columns=(
                    Column("id", ColumnType.INT, nullable=False),
                    Column("id", ColumnType.TEXT),
                )
            )

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(ValidationError):
            make_schema(primary_key="nope")

    def test_unknown_unique_rejected(self):
        with pytest.raises(ValidationError):
            make_schema(unique=("nope",))

    def test_nullable_primary_key_rejected(self):
        with pytest.raises(ValidationError):
            make_schema(
                columns=(Column("id", ColumnType.INT), Column("label", ColumnType.TEXT))
            )

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("label").type is ColumnType.TEXT
        with pytest.raises(DatabaseError):
            schema.column("missing")

    def test_normalize_fills_defaults(self):
        schema = make_schema(
            columns=(
                Column("id", ColumnType.INT, nullable=False),
                Column("label", ColumnType.TEXT, default="d"),
            )
        )
        row = schema.normalize_row({"id": 1})
        assert row == {"id": 1, "label": "d"}

    def test_normalize_rejects_unknown_columns(self):
        with pytest.raises(DatabaseError):
            make_schema().normalize_row({"id": 1, "weird": 2})

    def test_normalize_enforces_not_null(self):
        with pytest.raises(DatabaseError):
            make_schema().normalize_row({"label": "x"})
