"""Model-based stateful testing of the mini database.

A hypothesis rule-based state machine drives random sequences of
inserts, updates, deletes, index creations and aborted transactions
against both the real Table/Database and a trivial in-memory model
(a dict of rows); after every step the two must agree exactly.
"""

from __future__ import annotations


from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.db import Column, ColumnType, Database, Schema, eq

KEYS = ["alpha", "beta", "gamma", "delta"]


def fresh_database() -> Database:
    db = Database()
    db.create_table(
        Schema(
            name="t",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("key", ColumnType.TEXT, nullable=False),
                Column("score", ColumnType.INT),
            ),
            primary_key="id",
        )
    )
    return db


class DatabaseMachine(RuleBasedStateMachine):
    """Real DB vs dict-of-rows model, op by op."""

    def __init__(self) -> None:
        super().__init__()
        self.db = fresh_database()
        self.model: dict[int, dict] = {}
        self.next_id = 1

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    @rule(key=st.sampled_from(KEYS), score=st.integers(-5, 5))
    def insert(self, key: str, score: int) -> None:
        pk = self.db.table("t").insert({"key": key, "score": score})
        assert pk == self.next_id
        self.model[pk] = {"id": pk, "key": key, "score": score}
        self.next_id += 1

    @rule(key=st.sampled_from(KEYS), score=st.integers(-5, 5))
    def update_by_key(self, key: str, score: int) -> None:
        updated = self.db.table("t").update(eq("key", key), {"score": score})
        expected = [pk for pk, row in self.model.items() if row["key"] == key]
        assert updated == len(expected)
        for pk in expected:
            self.model[pk]["score"] = score

    @rule(key=st.sampled_from(KEYS))
    def delete_by_key(self, key: str) -> None:
        deleted = self.db.table("t").delete(eq("key", key))
        expected = [pk for pk, row in self.model.items() if row["key"] == key]
        assert deleted == len(expected)
        for pk in expected:
            del self.model[pk]

    @rule()
    def create_index(self) -> None:
        self.db.table("t").create_index("key")

    @rule(key=st.sampled_from(KEYS), score=st.integers(-5, 5))
    def aborted_transaction(self, key: str, score: int) -> None:
        """Writes inside an aborted transaction must vanish entirely."""
        try:
            with self.db.transaction():
                self.db.table("t").insert({"key": key, "score": score})
                self.db.table("t").delete(eq("key", key))
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        # Model unchanged; auto-counter also rolled back, so next_id holds.

    @rule(key=st.sampled_from(KEYS), score=st.integers(-5, 5))
    def committed_transaction(self, key: str, score: int) -> None:
        with self.db.transaction():
            pk = self.db.table("t").insert({"key": key, "score": score})
        self.model[pk] = {"id": pk, "key": key, "score": score}
        self.next_id = pk + 1

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def tables_agree(self) -> None:
        real = {row["id"]: row for row in self.db.table("t").select()}
        assert real == self.model

    @invariant()
    def key_queries_agree(self) -> None:
        for key in KEYS:
            real = sorted(
                row["id"] for row in self.db.table("t").select(eq("key", key))
            )
            expected = sorted(
                pk for pk, row in self.model.items() if row["key"] == key
            )
            assert real == expected

    @invariant()
    def counts_agree(self) -> None:
        assert self.db.table("t").count() == len(self.model)


TestDatabaseStateful = DatabaseMachine.TestCase
TestDatabaseStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
