"""Tests for database dump/load (durability of the PostgreSQL stand-in)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DatabaseError
from repro.db import (
    Column,
    ColumnType,
    Database,
    Schema,
    dump_database,
    eq,
    load_database,
    open_database,
    save_database,
)


def populated_database():
    db = Database(name="sor-test")
    db.create_table(
        Schema(
            name="mixed",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("text", ColumnType.TEXT),
                Column("real", ColumnType.REAL),
                Column("flag", ColumnType.BOOL),
                Column("blob", ColumnType.BLOB),
                Column("doc", ColumnType.JSON),
            ),
            primary_key="id",
            unique=("text",),
        )
    )
    db.table("mixed").insert_many(
        [
            {"text": "a", "real": 1.5, "flag": True, "blob": b"\x00\xff\x10",
             "doc": {"nested": [1, 2]}},
            {"text": "b", "real": -2.0, "flag": False, "blob": b"", "doc": None},
            {"text": None, "real": None, "flag": None, "blob": None, "doc": None},
        ]
    )
    db.table("mixed").create_index("flag")
    return db


class TestRoundtrip:
    def test_rows_preserved_exactly(self):
        original = populated_database()
        restored = load_database(dump_database(original))
        assert restored.table("mixed").select() == original.table("mixed").select()

    def test_name_and_tables_preserved(self):
        restored = load_database(dump_database(populated_database()))
        assert restored.name == "sor-test"
        assert restored.table_names() == ["mixed"]

    def test_indexes_recreated(self):
        restored = load_database(dump_database(populated_database()))
        assert restored.table("mixed").indexed_columns == ("flag",)
        assert len(restored.table("mixed").select(eq("flag", True))) == 1

    def test_auto_counter_continues(self):
        original = populated_database()
        original.table("mixed").delete(eq("text", "b"))  # id 2 freed
        restored = load_database(dump_database(original))
        new_id = restored.table("mixed").insert({"text": "fresh"})
        assert new_id == 4  # counter not reset by the deletion

    def test_unique_constraint_survives(self):
        restored = load_database(dump_database(populated_database()))
        with pytest.raises(DatabaseError, match="unique"):
            restored.table("mixed").insert({"text": "a"})

    def test_dump_is_json_serializable(self):
        dump = dump_database(populated_database())
        json.dumps(dump)  # must not raise

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated_database(), path)
        restored = open_database(path)
        assert restored.table("mixed").count() == 3

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(DatabaseError):
            open_database(tmp_path / "missing.json")

    def test_open_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(DatabaseError):
            open_database(path)

    def test_wrong_format_version_rejected(self):
        dump = dump_database(populated_database())
        dump["format"] = 99
        with pytest.raises(DatabaseError):
            load_database(dump)


class TestRoundtripExtras:
    def test_unicode_text_and_json_survive(self):
        db = Database()
        db.create_table(
            Schema(
                name="t",
                columns=(
                    Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                    Column("text", ColumnType.TEXT),
                    Column("doc", ColumnType.JSON),
                ),
                primary_key="id",
            )
        )
        db.table("t").insert(
            {"text": "café ☕ — syracuse 雪", "doc": {"emoji": "📡", "mix": ["ß", 1]}}
        )
        dumped = json.dumps(dump_database(db))  # through real JSON text
        restored = load_database(json.loads(dumped))
        assert restored.table("t").select() == db.table("t").select()

    def test_blob_default_survives_schema_roundtrip(self):
        db = Database()
        db.create_table(
            Schema(
                name="t",
                columns=(
                    Column("key", ColumnType.TEXT, nullable=False),
                    Column("body", ColumnType.BLOB, default=b"\x00"),
                ),
                primary_key="key",
            )
        )
        db.table("t").insert({"key": "a"})  # default applies
        restored = load_database(json.loads(json.dumps(dump_database(db))))
        assert restored.table("t").schema.column("body").default == b"\x00"
        restored.table("t").insert({"key": "b"})
        assert restored.table("t").select(eq("key", "b"))[0]["body"] == b"\x00"

    def test_multiple_indexes_recreated(self):
        db = populated_database()
        db.table("mixed").create_index("real")
        restored = load_database(dump_database(db))
        assert set(restored.table("mixed").indexed_columns) == {"flag", "real"}


class TestAtomicSave:
    def test_failed_save_never_clobbers_the_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "db.json"
        save_database(populated_database(), path)
        before = path.read_bytes()

        import repro.db.persistence as persistence

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(DatabaseError):
            save_database(Database(name="other"), path)
        # The old complete file is still there, byte for byte, and the
        # aborted attempt left no temp file behind.
        assert path.read_bytes() == before
        assert list(tmp_path.glob(".*.tmp")) == []
        assert open_database(path).table("mixed").count() == 3

    def test_save_leaves_no_temp_file_on_success(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated_database(), path)
        assert [entry.name for entry in tmp_path.iterdir()] == ["db.json"]


class TestLoadNegatives:
    def test_non_dict_dump_rejected(self):
        with pytest.raises(DatabaseError, match="not an object"):
            load_database([1, 2, 3])

    def test_missing_tables_key_rejected(self):
        with pytest.raises(DatabaseError):
            load_database({"format": 1, "name": "x"})

    def test_non_string_name_rejected(self):
        with pytest.raises(DatabaseError, match="name"):
            load_database({"format": 1, "name": 7, "tables": []})

    def test_malformed_table_entry_rejected(self):
        with pytest.raises(DatabaseError):
            load_database({"format": 1, "name": "x", "tables": ["nope"]})

    def test_corrupt_base64_blob_rejected(self):
        dump = dump_database(populated_database())
        for row in dump["tables"][0]["rows"]:
            if row["blob"]:
                row["blob"] = "!!! not base64 !!!"
        with pytest.raises(DatabaseError, match="base64"):
            load_database(dump)

    def test_non_string_blob_cell_rejected(self):
        dump = dump_database(populated_database())
        for row in dump["tables"][0]["rows"]:
            if row["blob"]:
                row["blob"] = 12345
        with pytest.raises(DatabaseError, match="base64"):
            load_database(dump)

    def test_malformed_schema_rejected(self):
        dump = dump_database(populated_database())
        dump["tables"][0]["schema"]["columns"][0]["type"] = "no-such-type"
        with pytest.raises(DatabaseError, match="schema"):
            load_database(dump)

    def test_truncated_json_file_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated_database(), path)
        path.write_bytes(path.read_bytes()[:-20])  # torn write
        with pytest.raises(DatabaseError):
            open_database(path)


@given(
    rows=st.lists(
        st.tuples(
            st.integers(-1000, 1000),
            st.binary(max_size=20),
            st.booleans(),
        ),
        max_size=25,
    )
)
def test_roundtrip_property(rows):
    """Arbitrary content round-trips bit-exactly."""
    db = Database()
    db.create_table(
        Schema(
            name="t",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("n", ColumnType.INT),
                Column("b", ColumnType.BLOB),
                Column("f", ColumnType.BOOL),
            ),
            primary_key="id",
        )
    )
    for n, b, f in rows:
        db.table("t").insert({"n": n, "b": b, "f": f})
    restored = load_database(dump_database(db))
    assert restored.table("t").select() == db.table("t").select()
