"""Tests for database dump/load (durability of the PostgreSQL stand-in)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DatabaseError
from repro.db import (
    Column,
    ColumnType,
    Database,
    Schema,
    dump_database,
    eq,
    load_database,
    open_database,
    save_database,
)


def populated_database():
    db = Database(name="sor-test")
    db.create_table(
        Schema(
            name="mixed",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("text", ColumnType.TEXT),
                Column("real", ColumnType.REAL),
                Column("flag", ColumnType.BOOL),
                Column("blob", ColumnType.BLOB),
                Column("doc", ColumnType.JSON),
            ),
            primary_key="id",
            unique=("text",),
        )
    )
    db.table("mixed").insert_many(
        [
            {"text": "a", "real": 1.5, "flag": True, "blob": b"\x00\xff\x10",
             "doc": {"nested": [1, 2]}},
            {"text": "b", "real": -2.0, "flag": False, "blob": b"", "doc": None},
            {"text": None, "real": None, "flag": None, "blob": None, "doc": None},
        ]
    )
    db.table("mixed").create_index("flag")
    return db


class TestRoundtrip:
    def test_rows_preserved_exactly(self):
        original = populated_database()
        restored = load_database(dump_database(original))
        assert restored.table("mixed").select() == original.table("mixed").select()

    def test_name_and_tables_preserved(self):
        restored = load_database(dump_database(populated_database()))
        assert restored.name == "sor-test"
        assert restored.table_names() == ["mixed"]

    def test_indexes_recreated(self):
        restored = load_database(dump_database(populated_database()))
        assert restored.table("mixed").indexed_columns == ("flag",)
        assert len(restored.table("mixed").select(eq("flag", True))) == 1

    def test_auto_counter_continues(self):
        original = populated_database()
        original.table("mixed").delete(eq("text", "b"))  # id 2 freed
        restored = load_database(dump_database(original))
        new_id = restored.table("mixed").insert({"text": "fresh"})
        assert new_id == 4  # counter not reset by the deletion

    def test_unique_constraint_survives(self):
        restored = load_database(dump_database(populated_database()))
        with pytest.raises(DatabaseError, match="unique"):
            restored.table("mixed").insert({"text": "a"})

    def test_dump_is_json_serializable(self):
        dump = dump_database(populated_database())
        json.dumps(dump)  # must not raise

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated_database(), path)
        restored = open_database(path)
        assert restored.table("mixed").count() == 3

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(DatabaseError):
            open_database(tmp_path / "missing.json")

    def test_open_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(DatabaseError):
            open_database(path)

    def test_wrong_format_version_rejected(self):
        dump = dump_database(populated_database())
        dump["format"] = 99
        with pytest.raises(DatabaseError):
            load_database(dump)


@given(
    rows=st.lists(
        st.tuples(
            st.integers(-1000, 1000),
            st.binary(max_size=20),
            st.booleans(),
        ),
        max_size=25,
    )
)
def test_roundtrip_property(rows):
    """Arbitrary content round-trips bit-exactly."""
    db = Database()
    db.create_table(
        Schema(
            name="t",
            columns=(
                Column("id", ColumnType.INT, nullable=False, auto_increment=True),
                Column("n", ColumnType.INT),
                Column("b", ColumnType.BLOB),
                Column("f", ColumnType.BOOL),
            ),
            primary_key="id",
        )
    )
    for n, b, f in rows:
        db.table("t").insert({"n": n, "b": b, "f": f})
    restored = load_database(dump_database(db))
    assert restored.table("t").select() == db.table("t").select()
