"""Tests for repro.db.table."""

import pytest

from repro.common.errors import DatabaseError
from repro.db import Column, ColumnType, Schema, Table, eq, gt


def make_table(*, unique=(), auto=False):
    schema = Schema(
        name="people",
        columns=(
            Column("id", ColumnType.INT, nullable=False, auto_increment=auto),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("age", ColumnType.INT),
        ),
        primary_key="id",
        unique=tuple(unique),
    )
    return Table(schema)


class TestInsert:
    def test_insert_and_get(self):
        table = make_table()
        pk = table.insert({"id": 1, "name": "ann", "age": 30})
        assert pk == 1
        assert table.get(1) == {"id": 1, "name": "ann", "age": 30}

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert({"id": 1, "name": "ann"})
        with pytest.raises(DatabaseError, match="duplicate"):
            table.insert({"id": 1, "name": "bob"})

    def test_auto_increment_assigns_sequential(self):
        table = make_table(auto=True)
        assert table.insert({"name": "a"}) == 1
        assert table.insert({"name": "b"}) == 2

    def test_auto_increment_respects_explicit_keys(self):
        table = make_table(auto=True)
        table.insert({"id": 10, "name": "a"})
        assert table.insert({"name": "b"}) == 11

    def test_missing_pk_without_auto_rejected(self):
        table = make_table()
        with pytest.raises(DatabaseError):
            table.insert({"name": "a"})

    def test_unique_constraint(self):
        table = make_table(unique=["name"])
        table.insert({"id": 1, "name": "ann"})
        with pytest.raises(DatabaseError, match="unique"):
            table.insert({"id": 2, "name": "ann"})

    def test_insert_many(self):
        table = make_table(auto=True)
        keys = table.insert_many([{"name": "a"}, {"name": "b"}])
        assert keys == [1, 2]

    def test_inserted_row_is_copied(self):
        table = make_table()
        row = {"id": 1, "name": "ann", "age": 5}
        table.insert(row)
        row["name"] = "mutated"
        assert table.get(1)["name"] == "ann"


class TestSelect:
    def make_filled(self):
        table = make_table(auto=True)
        table.insert_many(
            [
                {"name": "ann", "age": 30},
                {"name": "bob", "age": 25},
                {"name": "cat", "age": None},
            ]
        )
        return table

    def test_select_all(self):
        assert len(self.make_filled().select()) == 3

    def test_select_where(self):
        rows = self.make_filled().select(eq("name", "bob"))
        assert [row["age"] for row in rows] == [25]

    def test_order_by_ascending_nulls_last(self):
        rows = self.make_filled().select(order_by="age")
        assert [row["name"] for row in rows] == ["bob", "ann", "cat"]

    def test_order_by_descending_nulls_last(self):
        rows = self.make_filled().select(order_by="age", descending=True)
        assert [row["name"] for row in rows] == ["ann", "bob", "cat"]

    def test_limit(self):
        assert len(self.make_filled().select(limit=2)) == 2

    def test_count(self):
        assert self.make_filled().count(gt("age", 24)) == 2

    def test_results_are_copies(self):
        table = self.make_filled()
        table.select()[0]["name"] = "mutated"
        assert all(row["name"] != "mutated" for row in table.select())

    def test_pk_lookup_uses_primary_index(self):
        table = self.make_filled()
        rows = table.select(eq("id", 2))
        assert [row["name"] for row in rows] == ["bob"]


class TestUpdateDelete:
    def test_update(self):
        table = make_table(auto=True)
        table.insert_many([{"name": "a", "age": 1}, {"name": "b", "age": 2}])
        assert table.update(eq("name", "a"), {"age": 10}) == 1
        assert table.select(eq("name", "a"))[0]["age"] == 10

    def test_update_pk_rejected(self):
        table = make_table(auto=True)
        table.insert({"name": "a"})
        with pytest.raises(DatabaseError):
            table.update(eq("name", "a"), {"id": 99})

    def test_update_respects_unique(self):
        table = make_table(auto=True, unique=["name"])
        table.insert_many([{"name": "a"}, {"name": "b"}])
        with pytest.raises(DatabaseError, match="unique"):
            table.update(eq("name", "b"), {"name": "a"})

    def test_update_to_same_value_allowed(self):
        table = make_table(auto=True, unique=["name"])
        table.insert({"name": "a", "age": 1})
        assert table.update(eq("name", "a"), {"name": "a", "age": 2}) == 1

    def test_delete(self):
        table = make_table(auto=True)
        table.insert_many([{"name": "a"}, {"name": "b"}])
        assert table.delete(eq("name", "a")) == 1
        assert len(table) == 1

    def test_delete_frees_unique_value(self):
        table = make_table(auto=True, unique=["name"])
        table.insert({"name": "a"})
        table.delete(eq("name", "a"))
        table.insert({"name": "a"})  # does not raise


class TestIndexes:
    def test_index_lookup_matches_scan(self):
        table = make_table(auto=True)
        for index in range(50):
            table.insert({"name": f"n{index % 5}", "age": index})
        scan = sorted(row["id"] for row in table.select(eq("name", "n3")))
        table.create_index("name")
        indexed = sorted(row["id"] for row in table.select(eq("name", "n3")))
        assert scan == indexed

    def test_index_maintained_by_writes(self):
        table = make_table(auto=True)
        table.create_index("name")
        table.insert({"name": "a"})
        table.insert({"name": "b"})
        table.update(eq("name", "a"), {"name": "c"})
        assert table.select(eq("name", "a")) == []
        assert len(table.select(eq("name", "c"))) == 1
        table.delete(eq("name", "c"))
        assert table.select(eq("name", "c")) == []

    def test_create_index_is_idempotent(self):
        table = make_table()
        table.create_index("name")
        table.create_index("name")
        assert table.indexed_columns == ("name",)
