"""Tests for repro.db.predicates."""

from repro.db import and_, between, eq, ge, gt, in_, is_null, le, lt, ne, not_, or_

ROW = {"a": 5, "b": "x", "c": None}


class TestComparisons:
    def test_eq(self):
        assert eq("a", 5)(ROW)
        assert not eq("a", 6)(ROW)

    def test_eq_has_index_hint(self):
        assert eq("a", 5).index_hint == ("a", 5)

    def test_ne(self):
        assert ne("a", 6)(ROW)
        assert not ne("a", 5)(ROW)

    def test_ordering(self):
        assert lt("a", 6)(ROW)
        assert le("a", 5)(ROW)
        assert gt("a", 4)(ROW)
        assert ge("a", 5)(ROW)
        assert not gt("a", 5)(ROW)

    def test_null_never_matches_ordering(self):
        assert not lt("c", 10)(ROW)
        assert not ge("c", 0)(ROW)

    def test_between(self):
        assert between("a", 1, 5)(ROW)
        assert not between("a", 6, 9)(ROW)
        assert not between("c", 0, 10)(ROW)

    def test_in(self):
        assert in_("b", ["x", "y"])(ROW)
        assert not in_("b", ["z"])(ROW)

    def test_is_null(self):
        assert is_null("c")(ROW)
        assert not is_null("a")(ROW)

    def test_missing_column_behaves_as_null(self):
        assert not eq("zz", 1)(ROW)
        assert is_null("zz")(ROW)


class TestCombinators:
    def test_and(self):
        assert and_(eq("a", 5), eq("b", "x"))(ROW)
        assert not and_(eq("a", 5), eq("b", "z"))(ROW)

    def test_and_propagates_first_index_hint(self):
        combined = and_(gt("a", 0), eq("b", "x"))
        assert combined.index_hint == ("b", "x")

    def test_or(self):
        assert or_(eq("a", 99), eq("b", "x"))(ROW)
        assert not or_(eq("a", 99), eq("b", "z"))(ROW)

    def test_or_is_never_indexed(self):
        assert or_(eq("a", 1), eq("b", 2)).index_hint is None

    def test_not(self):
        assert not_(eq("a", 99))(ROW)
        assert not not_(eq("a", 5))(ROW)

    def test_nested_composition(self):
        predicate = and_(not_(is_null("a")), or_(lt("a", 3), ge("a", 5)))
        assert predicate(ROW)
