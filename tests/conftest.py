"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.core.scheduling import (
    GaussianKernel,
    MobileUser,
    SchedulingPeriod,
    SchedulingProblem,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock(start=0.0)


@pytest.fixture
def small_problem() -> SchedulingProblem:
    """A tiny scheduling instance usable by brute force."""
    period = SchedulingPeriod(0.0, 100.0, 10)
    users = [
        MobileUser("a", 0.0, 60.0, 2),
        MobileUser("b", 30.0, 100.0, 2),
    ]
    return SchedulingProblem(period, users, GaussianKernel(sigma=15.0))


@pytest.fixture
def paper_problem(rng: np.random.Generator) -> SchedulingProblem:
    """A paper-scale instance (3 h, 1080 instants, σ = 10 s)."""
    period = SchedulingPeriod(0.0, 10_800.0, 1080)
    users = []
    for index in range(20):
        arrival = float(rng.uniform(0, 10_800))
        departure = float(rng.uniform(arrival, 10_800))
        users.append(MobileUser(f"u{index}", arrival, departure, 17))
    return SchedulingProblem(period, users, GaussianKernel(sigma=10.0))
