"""Tests for repro.net.messages."""

import pytest

from repro.common.errors import CodecError
from repro.net import Envelope, MessageType
from repro.net.codec import encode_body


class TestEnvelope:
    def make(self):
        return Envelope(
            message_type=MessageType.PARTICIPATE,
            sender="phone-1",
            recipient="server",
            payload={"budget": 17, "nested": {"values": [1.0, 2.0]}},
        )

    def test_roundtrip(self):
        envelope = self.make()
        assert Envelope.from_bytes(envelope.to_bytes()) == envelope

    def test_all_message_types_roundtrip(self):
        for message_type in MessageType:
            envelope = Envelope(message_type, "a", "b", {})
            assert Envelope.from_bytes(envelope.to_bytes()).message_type is message_type

    def test_reply_swaps_endpoints(self):
        reply = self.make().reply(MessageType.ACK, {"ok": True})
        assert reply.sender == "server"
        assert reply.recipient == "phone-1"
        assert reply.message_type is MessageType.ACK
        assert reply.payload == {"ok": True}

    def test_reply_default_payload_empty(self):
        assert self.make().reply(MessageType.ACK).payload == {}

    def test_unknown_type_rejected(self):
        body = encode_body(
            {"type": "martian", "sender": "a", "recipient": "b", "payload": {}}
        )
        with pytest.raises(CodecError):
            Envelope.from_bytes(body)

    def test_missing_fields_rejected(self):
        with pytest.raises(CodecError):
            Envelope.from_bytes(encode_body({"type": "ack"}))

    def test_non_dict_payload_rejected(self):
        body = encode_body(
            {"type": "ack", "sender": "a", "recipient": "b", "payload": [1]}
        )
        with pytest.raises(CodecError):
            Envelope.from_bytes(body)
