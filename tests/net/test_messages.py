"""Tests for repro.net.messages."""

import pytest

from repro.common.errors import CodecError
from repro.net import Envelope, MessageType
from repro.net.codec import encode_body


class TestEnvelope:
    def make(self):
        return Envelope(
            message_type=MessageType.PARTICIPATE,
            sender="phone-1",
            recipient="server",
            payload={"budget": 17, "nested": {"values": [1.0, 2.0]}},
        )

    def test_roundtrip(self):
        envelope = self.make()
        assert Envelope.from_bytes(envelope.to_bytes()) == envelope

    def test_all_message_types_roundtrip(self):
        for message_type in MessageType:
            envelope = Envelope(message_type, "a", "b", {})
            assert Envelope.from_bytes(envelope.to_bytes()).message_type is message_type

    def test_reply_swaps_endpoints(self):
        reply = self.make().reply(MessageType.ACK, {"ok": True})
        assert reply.sender == "server"
        assert reply.recipient == "phone-1"
        assert reply.message_type is MessageType.ACK
        assert reply.payload == {"ok": True}

    def test_reply_default_payload_empty(self):
        assert self.make().reply(MessageType.ACK).payload == {}

    def test_unknown_type_rejected(self):
        body = encode_body(
            {"type": "martian", "sender": "a", "recipient": "b", "payload": {}}
        )
        with pytest.raises(CodecError):
            Envelope.from_bytes(body)

    def test_missing_fields_rejected(self):
        with pytest.raises(CodecError):
            Envelope.from_bytes(encode_body({"type": "ack"}))

    def test_non_dict_payload_rejected(self):
        body = encode_body(
            {"type": "ack", "sender": "a", "recipient": "b", "payload": [1]}
        )
        with pytest.raises(CodecError):
            Envelope.from_bytes(body)


class TestIdempotencyKeys:
    def make(self, **payload):
        return Envelope(
            message_type=MessageType.SENSED_DATA,
            sender="phone-1",
            recipient="server",
            payload=payload or {"task_id": "t-1", "executed": 3},
        )

    def test_key_survives_the_wire(self):
        stamped = self.make().with_idempotency_key("k-123")
        decoded = Envelope.from_bytes(stamped.to_bytes())
        assert decoded.idempotency_key == "k-123"
        assert decoded == stamped

    def test_unstamped_envelope_has_no_key_on_the_wire(self):
        decoded = Envelope.from_bytes(self.make().to_bytes())
        assert decoded.idempotency_key is None

    def test_content_key_is_deterministic(self):
        assert self.make().content_key() == self.make().content_key()

    def test_content_key_ignores_payload_insertion_order(self):
        forward = self.make(a=1, b=2)
        backward = self.make(b=2, a=1)
        assert forward.content_key() == backward.content_key()

    def test_content_key_changes_with_content(self):
        assert self.make(x=1).content_key() != self.make(x=2).content_key()

    def test_content_key_independent_of_stamped_key(self):
        plain = self.make()
        stamped = plain.with_idempotency_key("nonce-7")
        assert stamped.content_key() == plain.content_key()

    def test_with_idempotency_key_defaults_to_content_key(self):
        envelope = self.make()
        assert envelope.with_idempotency_key().idempotency_key == (
            envelope.content_key()
        )

    def test_reply_carries_no_key(self):
        stamped = self.make().with_idempotency_key("k-1")
        assert stamped.reply(MessageType.ACK).idempotency_key is None

    def test_non_string_key_on_the_wire_rejected(self):
        body = encode_body(
            {
                "type": "ack",
                "sender": "a",
                "recipient": "b",
                "payload": {},
                "idem": 7,
            }
        )
        with pytest.raises(CodecError):
            Envelope.from_bytes(body)
