"""Tests for repro.net.gcm."""

import pytest

from repro.common.errors import TransportError
from repro.net import CloudMessenger


class TestCloudMessenger:
    def test_push_invokes_callback(self):
        messenger = CloudMessenger()
        received = []
        messenger.register_device("tok", received.append)
        messenger.push("tok", {"action": "ping"})
        assert received == [{"action": "ping"}]
        assert messenger.pushes_delivered == 1

    def test_payload_is_copied(self):
        messenger = CloudMessenger()
        received = []
        messenger.register_device("tok", received.append)
        payload = {"a": 1}
        messenger.push("tok", payload)
        payload["a"] = 2
        assert received[0]["a"] == 1

    def test_unknown_token_raises(self):
        messenger = CloudMessenger()
        with pytest.raises(TransportError):
            messenger.push("ghost", {})
        assert messenger.pushes_failed == 1

    def test_reregistration_replaces_callback(self):
        messenger = CloudMessenger()
        first, second = [], []
        messenger.register_device("tok", first.append)
        messenger.register_device("tok", second.append)
        messenger.push("tok", {})
        assert first == [] and second == [{}]

    def test_unregister(self):
        messenger = CloudMessenger()
        messenger.register_device("tok", lambda payload: None)
        messenger.unregister_device("tok")
        assert not messenger.is_registered("tok")
        messenger.unregister_device("tok")  # idempotent
