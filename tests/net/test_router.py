"""Tests for repro.net.router: consistent hashing and envelope routing."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.net import NetworkConditions
from repro.net.http import HttpRequest, HttpResponse
from repro.net.messages import Envelope, MessageType
from repro.net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.router import HashRing, RoutingTable, ShardInfo, ShardRouter
from repro.net.transport import Network
from repro.obs import MetricsRegistry, NullTracer


class TestHashRing:
    def test_deterministic_assignment(self):
        ring = HashRing(("a", "b", "c"))
        assert all(
            ring.node_for(f"key-{i}") == HashRing(("c", "b", "a")).node_for(f"key-{i}")
            for i in range(50)
        )

    def test_every_node_owns_keys(self):
        ring = HashRing(("a", "b", "c", "d"), vnodes=64)
        owners = {ring.node_for(f"key-{i}") for i in range(500)}
        assert owners == {"a", "b", "c", "d"}

    def test_membership_change_moves_a_minority_of_keys(self):
        keys = [f"key-{i}" for i in range(1000)]
        ring = HashRing(("a", "b", "c", "d"))
        before = {key: ring.node_for(key) for key in keys}
        ring.add("e")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Consistent hashing: ~1/5 of the keyspace moves, not ~4/5.
        assert 0 < moved < len(keys) // 2

    def test_remove_only_reassigns_the_removed_nodes_keys(self):
        keys = [f"key-{i}" for i in range(500)]
        ring = HashRing(("a", "b", "c"))
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("b")
        for key in keys:
            if before[key] != "b":
                assert ring.node_for(key) == before[key]

    def test_empty_ring_raises(self):
        with pytest.raises(ValidationError, match="empty"):
            HashRing().node_for("anything")

    def test_vnodes_validated(self):
        with pytest.raises(ValidationError):
            HashRing(vnodes=0)


class TestRoutingTable:
    def make_table(self):
        table = RoutingTable(vnodes=32)
        for index in range(3):
            table.add_shard(
                ShardInfo(
                    shard_id=f"shard-{index}",
                    primary=f"shard-{index}",
                    replicas=(f"shard-{index}-r0",),
                )
            )
        return table

    def test_pin_overrides_the_ring(self):
        table = self.make_table()
        ring_owner = table.category_owner("museums")
        target = next(
            shard for shard in table.shard_ids() if shard != ring_owner
        )
        table.pin_category("museums", target)
        assert table.category_owner("museums") == target
        assert table.shard_for_category("museums").shard_id == target

    def test_pin_to_unknown_shard_rejected(self):
        table = self.make_table()
        with pytest.raises(ValidationError, match="unknown shard"):
            table.pin_category("museums", "shard-99")

    def test_shard_for_host_matches_primaries_only(self):
        table = self.make_table()
        assert table.shard_for_host("shard-1").shard_id == "shard-1"
        assert table.shard_for_host("shard-1-r0") is None

    def test_set_replicas_after_promotion(self):
        table = self.make_table()
        table.set_replicas("shard-0", ())
        assert table.shards["shard-0"].replicas == ()
        assert table.shards["shard-0"].primary == "shard-0"

    def test_learn_app(self):
        table = self.make_table()
        table.learn_app("app-7", "museums")
        assert table.app_category["app-7"] == "museums"


class _RecordingBackend:
    """Fake shard endpoint: records requests, returns a canned reply."""

    def __init__(self, host, *, status=200, fail=False):
        self.host = host
        self.status = status
        self.fail = fail
        self.requests = []

    def handle_request(self, request):
        self.requests.append(request)
        if self.fail:
            return HttpResponse(status=500)
        reply = Envelope(
            message_type=MessageType.ACK,
            sender=self.host,
            recipient="",
            payload={"served_by": self.host},
        )
        return HttpResponse(status=self.status, body=reply.to_bytes())


def build_router(num_shards=2, replicas=1):
    metrics = MetricsRegistry()
    network = Network(
        conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
        rng=np.random.default_rng(0),
        metrics=metrics,
    )
    table = RoutingTable(vnodes=32)
    backends = {}
    for index in range(num_shards):
        shard_id = f"shard-{index}"
        replica_hosts = tuple(
            f"{shard_id}-r{j}" for j in range(replicas)
        )
        table.add_shard(
            ShardInfo(shard_id=shard_id, primary=shard_id, replicas=replica_hosts)
        )
        backends[shard_id] = _RecordingBackend(shard_id)
        network.register(shard_id, backends[shard_id])
        for host in replica_hosts:
            backends[host] = _RecordingBackend(host)
            network.register(host, backends[host])
    client = ResilientClient(
        network,
        policy=RetryPolicy(
            max_attempts=2, base_backoff_s=0.001, max_backoff_s=0.002,
            deadline_s=5.0,
        ),
        breaker_policy=BreakerPolicy(failure_threshold=100,
                                     recovery_timeout_s=0.01),
        rng=np.random.default_rng(1),
        metrics=metrics,
        tracer=NullTracer(),
    )
    router = ShardRouter(
        "router", network, table,
        client=client, metrics=metrics, tracer=NullTracer(),
    )
    return router, table, backends, network


def post(router, envelope):
    return router.handle_request(
        HttpRequest("POST", "router", "/sor", envelope.to_bytes())
    )


def served_by(response):
    return Envelope.from_bytes(response.body).payload.get("served_by")


class TestShardRouter:
    def test_participate_routes_by_learned_category(self):
        router, table, backends, _ = build_router()
        table.pin_category("museums", "shard-1")
        table.learn_app("app-1", "museums")
        response = post(
            router,
            Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="phone-1",
                recipient="router",
                payload={"app_id": "app-1"},
            ).with_idempotency_key(),
        )
        assert served_by(response) == "shard-1"
        assert len(backends["shard-1"].requests) == 1

    def test_unknown_app_counts_a_misroute_but_still_routes(self):
        router, _, _, _ = build_router()
        response = post(
            router,
            Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="phone-1",
                recipient="router",
                payload={"app_id": "app-unknown"},
            ).with_idempotency_key(),
        )
        assert response.status == 200
        counter = router.metrics.get("sor_shard_router_misroutes_total")
        assert counter.value() == 1

    def test_sensed_data_follows_task_id_prefix(self):
        router, _, backends, _ = build_router()
        response = post(
            router,
            Envelope(
                message_type=MessageType.SENSED_DATA,
                sender="phone-1",
                recipient="router",
                payload={"task_id": "shard-1:task-3"},
            ).with_idempotency_key(),
        )
        assert served_by(response) == "shard-1"
        assert backends["shard-0"].requests == []

    def test_keyless_rank_query_prefers_replicas(self):
        router, table, backends, _ = build_router()
        table.pin_category("museums", "shard-0")
        for _ in range(3):
            response = post(
                router,
                Envelope(
                    message_type=MessageType.RANK_QUERY,
                    sender="phone-1",
                    recipient="router",
                    payload={"category": "museums", "profiles": []},
                ),
            )
            assert served_by(response) == "shard-0-r0"
        assert backends["shard-0"].requests == []

    def test_rank_query_fails_over_replica_to_primary(self):
        router, table, backends, network = build_router()
        table.pin_category("museums", "shard-0")
        network.unregister("shard-0-r0")  # replica is dark
        response = post(
            router,
            Envelope(
                message_type=MessageType.RANK_QUERY,
                sender="phone-1",
                recipient="router",
                payload={"category": "museums", "profiles": []},
            ),
        )
        assert served_by(response) == "shard-0"
        failovers = router.metrics.get("sor_shard_router_read_failovers_total")
        assert failovers.value() >= 1

    def test_preferences_fan_out_to_all_primaries(self):
        router, _, backends, _ = build_router()
        response = post(
            router,
            Envelope(
                message_type=MessageType.PREFERENCES,
                sender="phone-1",
                recipient="router",
                payload={"user_id": "u1"},
            ).with_idempotency_key(),
        )
        assert response.status == 200
        assert len(backends["shard-0"].requests) == 1
        assert len(backends["shard-1"].requests) == 1

    def test_dead_primary_write_answers_busy_envelope(self):
        router, table, _, network = build_router()
        table.pin_category("museums", "shard-1")
        table.learn_app("app-1", "museums")
        network.unregister("shard-1")
        response = post(
            router,
            Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="phone-1",
                recipient="router",
                payload={"app_id": "app-1"},
            ).with_idempotency_key(),
        )
        assert response.status == 503
        envelope = Envelope.from_bytes(response.body)
        assert envelope.message_type is MessageType.BUSY

    def test_backend_5xx_is_retried_and_turned_into_busy(self):
        router, table, backends, _ = build_router()
        table.pin_category("museums", "shard-0")
        table.learn_app("app-1", "museums")
        backends["shard-0"].fail = True
        response = post(
            router,
            Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="phone-1",
                recipient="router",
                payload={"app_id": "app-1"},
            ).with_idempotency_key(),
        )
        # The router's client retried (max_attempts=2) then gave up.
        assert len(backends["shard-0"].requests) == 2
        assert response.status == 503

    def test_malformed_body_is_a_400(self):
        router, _, _, _ = build_router()
        response = router.handle_request(
            HttpRequest("POST", "router", "/sor", b"\x00not-an-envelope")
        )
        assert response.status == 400

    def test_metrics_endpoint_serves_prometheus_text(self):
        router, _, _, _ = build_router()
        response = router.handle_request(
            HttpRequest("GET", "router", "/metrics")
        )
        assert response.status == 200
        assert b"sor_shard_router_requests_total" in response.body
