"""Concurrency regression tests for the circuit breaker and 5xx policy.

Each test here pins a bug that shipped before the breaker grew its lock:
``breaker_for`` could hand two threads distinct breakers for one host,
concurrent ``record_failure`` calls lost updates, HALF_OPEN admitted a
thundering herd of probes, and server-side 5xx replies sailed past the
breaker entirely.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import (
    CircuitOpenError,
    ServerBusyError,
    TransportError,
)
from repro.net import HttpRequest, HttpResponse
from repro.net.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitState,
    ResilientClient,
    RetryPolicy,
)
from repro.obs import MetricsRegistry

REQUEST = HttpRequest("POST", "host-a", "/sor", b"payload")


def make_client(network, *, policy=None, breaker=None, seed=0):
    clock = ManualClock()
    client = ResilientClient(
        network,
        policy=policy or RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                                     max_backoff_s=5.0, deadline_s=60.0),
        breaker_policy=breaker or BreakerPolicy(failure_threshold=3,
                                                recovery_timeout_s=10.0),
        clock=clock,
        rng=np.random.default_rng(seed),
        metrics=MetricsRegistry(),
    )
    return client, clock


class TestBreakerForAtomicity:
    def test_hammering_threads_share_one_breaker_per_host(self):
        client, _ = make_client(None)
        barrier = threading.Barrier(16)

        def grab(index):
            barrier.wait()
            return client.breaker_for(f"host-{index % 4}")

        with ThreadPoolExecutor(max_workers=16) as pool:
            breakers = list(pool.map(grab, range(160)))
        by_host = {}
        for index, breaker in enumerate(breakers[:16]):
            by_host.setdefault(f"host-{index % 4}", set()).add(id(breaker))
        for index, breaker in enumerate(breakers):
            assert id(breaker) == id(client.breaker_for(f"host-{index % 4}"))
        assert all(len(ids) == 1 for ids in by_host.values())

    def test_concurrent_failures_never_lose_updates(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=10_000, recovery_timeout_s=10.0),
            clock=ManualClock(),
        )
        per_thread, threads = 250, 8
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                breaker.record_failure()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # A torn read-modify-write would undercount; the lock makes the
        # tally exact.
        assert breaker.consecutive_failures == per_thread * threads
        assert breaker.state is CircuitState.CLOSED

    def test_threshold_crossing_opens_exactly_once(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=100, recovery_timeout_s=10.0),
            clock=clock,
        )
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(50):
                breaker.record_failure()

        workers = [threading.Thread(target=hammer) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()


class TestHalfOpenProbeToken:
    def open_breaker(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, recovery_timeout_s=10.0),
            clock=clock,
        )
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.advance(10.1)
        return breaker, clock

    def test_only_one_probe_is_admitted(self):
        breaker, _ = self.open_breaker()
        assert breaker.allow()  # takes the probe token, OPEN -> HALF_OPEN
        assert breaker.state is CircuitState.HALF_OPEN
        assert not breaker.allow()  # second caller fails fast
        assert not breaker.allow()

    def test_probe_stampede_admits_exactly_one_thread(self):
        breaker, _ = self.open_breaker()
        barrier = threading.Barrier(16)
        admitted = []

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        workers = [threading.Thread(target=probe) for _ in range(16)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(admitted) == 1

    def test_probe_success_closes_and_releases(self):
        breaker, _ = self.open_breaker()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow() and breaker.allow()  # no token held

    def test_probe_failure_reopens_and_releases(self):
        breaker, clock = self.open_breaker()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.advance(10.1)
        assert breaker.allow()  # a later recovery window gets a new probe

    def test_abort_probe_returns_the_token(self):
        breaker, _ = self.open_breaker()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.abort_probe()  # the probe never completed (e.g. deadline)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()  # token is available again

    def test_client_sheds_load_while_probe_is_in_flight(self):
        class StuckNetwork:
            def __init__(self):
                self.attempts = 0

            def send(self, request):
                self.attempts += 1
                raise TransportError("down")

        network = StuckNetwork()
        client, clock = make_client(
            network,
            policy=RetryPolicy(max_attempts=1, base_backoff_s=0.1,
                               max_backoff_s=1.0, deadline_s=60.0),
            breaker=BreakerPolicy(failure_threshold=1,
                                  recovery_timeout_s=10.0),
        )
        with pytest.raises(TransportError):
            client.send(REQUEST)  # opens the breaker
        with pytest.raises(CircuitOpenError):
            client.send(REQUEST)  # open: rejected without touching the wire
        assert network.attempts == 1
        clock.advance(10.1)
        with pytest.raises(TransportError):
            client.send(REQUEST)  # the probe itself
        assert network.attempts == 2
        with pytest.raises(CircuitOpenError):
            client.send(REQUEST)  # reopened by the failed probe
        assert network.attempts == 2


class StatusNetwork:
    """Replays a scripted list of HTTP statuses, then succeeds forever."""

    def __init__(self, statuses):
        self.statuses = list(statuses)
        self.attempts = 0

    def send(self, request):
        self.attempts += 1
        if self.statuses:
            status = self.statuses.pop(0)
            return HttpResponse(status=status, body=b"scripted")
        return HttpResponse(status=200, body=b"ok")


class TestServerErrorPolicy:
    def test_500_is_retried_and_counts_as_breaker_failure(self):
        network = StatusNetwork([500, 500])
        client, _ = make_client(
            network,
            breaker=BreakerPolicy(failure_threshold=50,
                                  recovery_timeout_s=10.0),
        )
        response = client.send(REQUEST)
        assert response.status == 200
        assert network.attempts == 3
        assert client.metrics.get("sor_net_retries_total").value(host="host-a") == 2

    def test_persistent_5xx_opens_the_breaker(self):
        network = StatusNetwork([502] * 100)
        client, _ = make_client(
            network,
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.1,
                               max_backoff_s=1.0, deadline_s=60.0),
            breaker=BreakerPolicy(failure_threshold=3,
                                  recovery_timeout_s=10.0),
        )
        with pytest.raises(TransportError):
            client.send(REQUEST)
        with pytest.raises((TransportError, CircuitOpenError)):
            client.send(REQUEST)
        assert client.breaker_for("host-a").state is CircuitState.OPEN

    def test_503_maps_to_server_busy_and_is_retried(self):
        network = StatusNetwork([503])
        client, _ = make_client(network)
        response = client.send(REQUEST)
        assert response.status == 200
        assert network.attempts == 2

    def test_exhausted_503s_surface_as_server_busy(self):
        network = StatusNetwork([503] * 10)
        client, _ = make_client(
            network,
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.1,
                               max_backoff_s=1.0, deadline_s=60.0),
            breaker=BreakerPolicy(failure_threshold=50,
                                  recovery_timeout_s=10.0),
        )
        with pytest.raises(TransportError, match="after 2 attempts") as info:
            client.send(REQUEST)
        assert isinstance(info.value.__cause__, ServerBusyError)
        assert network.attempts == 2

    def test_4xx_is_returned_verbatim_without_retry(self):
        network = StatusNetwork([404])
        client, _ = make_client(network)
        response = client.send(REQUEST)
        assert response.status == 404
        assert network.attempts == 1
        breaker = client.breaker_for("host-a")
        assert breaker.consecutive_failures == 0
        assert breaker.state is CircuitState.CLOSED
