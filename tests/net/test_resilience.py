"""Tests for repro.net.resilience: retries, deadlines, breaker, dedupe."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    TransportError,
    ValidationError,
)
from repro.net import HttpRequest, HttpResponse
from repro.net.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitState,
    IdempotencyCache,
    ResilientClient,
    RetryPolicy,
)
from repro.obs import MetricsRegistry
from repro.obs.export import to_prometheus_text


class ScriptedNetwork:
    """Fails the first ``failures`` sends, then succeeds forever."""

    def __init__(self, failures=0):
        self.failures = failures
        self.attempts = 0

    def send(self, request):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise TransportError("scripted drop")
        return HttpResponse(status=200, body=b"ok")


def make_client(network, *, policy=None, breaker=None, seed=0, sleeps=None):
    clock = ManualClock()
    client = ResilientClient(
        network,
        policy=policy or RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                                     max_backoff_s=5.0, deadline_s=60.0),
        breaker_policy=breaker or BreakerPolicy(failure_threshold=3,
                                                recovery_timeout_s=10.0),
        clock=clock,
        rng=np.random.default_rng(seed),
        sleep=sleeps.append if sleeps is not None else None,
        metrics=MetricsRegistry(),
    )
    return client, clock


REQUEST = HttpRequest("POST", "host-a", "/sor", b"payload")


class TestRetries:
    def test_transient_failures_are_retried(self):
        network = ScriptedNetwork(failures=2)
        client, _ = make_client(network)
        response = client.send(REQUEST)
        assert response.ok
        assert network.attempts == 3
        assert client.metrics.get("sor_net_retries_total").value(host="host-a") == 2

    def test_exhausted_attempts_raise_transport_error(self):
        network = ScriptedNetwork(failures=100)
        client, _ = make_client(
            network,
            breaker=BreakerPolicy(failure_threshold=50, recovery_timeout_s=10.0))
        with pytest.raises(TransportError, match="after 4 attempts"):
            client.send(REQUEST)
        assert network.attempts == 4

    def test_success_resets_breaker_and_counts(self):
        network = ScriptedNetwork(failures=1)
        client, _ = make_client(network)
        client.send(REQUEST)
        breaker = client.breaker_for("host-a")
        assert breaker.state is CircuitState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_backoff_sleeps_respect_the_decorrelated_jitter_formula(self):
        sleeps = []
        network = ScriptedNetwork(failures=3)
        client, _ = make_client(network, sleeps=sleeps,
                                breaker=BreakerPolicy(failure_threshold=50,
                                                      recovery_timeout_s=10.0))
        client.send(REQUEST)
        assert len(sleeps) == 3
        policy = client.policy
        previous = policy.base_backoff_s
        rng = np.random.default_rng(0)
        for observed in sleeps:
            expected = min(
                policy.max_backoff_s,
                float(rng.uniform(policy.base_backoff_s,
                                  max(policy.base_backoff_s, 3.0 * previous))),
            )
            assert observed == expected
            previous = expected

    def test_backoff_schedule_deterministic_under_fixed_seed(self):
        def schedule(seed):
            sleeps = []
            client, _ = make_client(
                ScriptedNetwork(failures=3), sleeps=sleeps, seed=seed,
                breaker=BreakerPolicy(failure_threshold=50,
                                      recovery_timeout_s=10.0))
            client.send(REQUEST)
            return sleeps

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_default_sleep_advances_manual_clock(self):
        network = ScriptedNetwork(failures=1)
        client, clock = make_client(network)
        client.send(REQUEST)
        assert clock.now() > 0.0


class TestDeadline:
    def test_retry_storm_under_total_loss_respects_deadline(self):
        policy = RetryPolicy(max_attempts=10_000, base_backoff_s=0.5,
                             max_backoff_s=4.0, deadline_s=10.0)
        network = ScriptedNetwork(failures=10**9)
        client, clock = make_client(
            network, policy=policy,
            breaker=BreakerPolicy(failure_threshold=10**9,
                                  recovery_timeout_s=1.0))
        with pytest.raises(DeadlineExceededError):
            client.send(REQUEST)
        # Never sleeps past the deadline: the clock stays within
        # deadline (the next backoff that would overrun aborts instead).
        assert clock.now() <= policy.deadline_s
        assert network.attempts < 100  # bounded, not a storm

    def test_deadline_error_is_a_transport_error(self):
        assert issubclass(DeadlineExceededError, TransportError)
        assert issubclass(CircuitOpenError, TransportError)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        network = ScriptedNetwork(failures=100)
        client, _ = make_client(
            network,
            policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1,
                               max_backoff_s=1.0, deadline_s=60.0),
            breaker=BreakerPolicy(failure_threshold=3, recovery_timeout_s=10.0))
        with pytest.raises(TransportError):
            client.send(REQUEST)
        assert client.breaker_for("host-a").state is CircuitState.OPEN
        attempts_before = network.attempts
        with pytest.raises(CircuitOpenError):
            client.send(REQUEST)
        assert network.attempts == attempts_before  # no wire traffic
        gauge = client.metrics.get("sor_net_circuit_state")
        assert gauge.value(host="host-a") == CircuitState.OPEN.value

    def test_half_open_probe_recovers(self):
        network = ScriptedNetwork(failures=3)
        client, clock = make_client(
            network,
            policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1,
                               max_backoff_s=1.0, deadline_s=60.0),
            breaker=BreakerPolicy(failure_threshold=3, recovery_timeout_s=10.0))
        with pytest.raises(TransportError):
            client.send(REQUEST)
        assert client.breaker_for("host-a").state is CircuitState.OPEN
        clock.advance(10.0)  # recovery timeout elapses; next send probes
        response = client.send(REQUEST)
        assert response.ok
        assert client.breaker_for("host-a").state is CircuitState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, recovery_timeout_s=5.0),
            ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        breaker.clock.advance(5.0)
        assert breaker.allow()  # transitions to HALF_OPEN
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_failure()  # probe failed: straight back to OPEN
        assert breaker.state is CircuitState.OPEN

    def test_breakers_are_per_host(self):
        client, _ = make_client(ScriptedNetwork())
        assert client.breaker_for("a") is not client.breaker_for("b")
        assert client.breaker_for("a") is client.breaker_for("a")


class TestGenericCall:
    def test_call_retries_arbitrary_operations(self):
        calls = []

        def sometimes():
            calls.append(1)
            if len(calls) < 3:
                raise TransportError("push lost")
            return "delivered"

        client, _ = make_client(ScriptedNetwork())
        assert client.call("gcm:token-1", sometimes) == "delivered"
        assert len(calls) == 3


class TestMetricsExposition:
    def test_retry_and_circuit_metrics_appear_in_prometheus_text(self):
        network = ScriptedNetwork(failures=1)
        client, _ = make_client(network)
        client.send(REQUEST)
        text = to_prometheus_text(client.metrics)
        assert "sor_net_retries_total" in text
        assert "sor_net_circuit_state" in text
        assert "sor_net_retry_backoff_seconds" in text
        assert "sor_net_resilient_sends_total" in text


class TestPolicies:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff_s=2.0, max_backoff_s=1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValidationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValidationError):
            BreakerPolicy(recovery_timeout_s=0.0)


class TestIdempotencyCache:
    def test_get_put_and_hit_miss_counts(self):
        cache = IdempotencyCache(capacity=2)
        assert cache.get("k1") is None
        response = HttpResponse(status=200, body=b"r1")
        cache.put("k1", response)
        assert cache.get("k1") is response
        assert cache.hits == 1 and cache.misses == 1

    def test_fifo_eviction_at_capacity(self):
        cache = IdempotencyCache(capacity=2)
        for index in range(3):
            cache.put(f"k{index}", HttpResponse(status=200))
        assert len(cache) == 2
        assert cache.get("k0") is None  # oldest evicted
        assert cache.get("k2") is not None

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValidationError):
            IdempotencyCache(capacity=0)
