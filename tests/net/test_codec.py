"""Tests for repro.net.codec."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import CodecError
from repro.net.codec import decode_body, decode_value, encode_body, encode_value


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 127, 128, -128, 2**40, -(2**40), "", "héllo",
         b"", b"\x00\xff", 0.0, -2.5, 1e300],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_nan_roundtrip(self):
        assert math.isnan(decode_value(encode_value(float("nan"))))

    def test_inf_roundtrip(self):
        assert decode_value(encode_value(float("inf"))) == float("inf")

    def test_int_float_distinct(self):
        assert isinstance(decode_value(encode_value(1)), int)
        assert isinstance(decode_value(encode_value(1.0)), float)

    def test_bool_int_distinct(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True


class TestContainers:
    def test_nested_roundtrip(self):
        value = {"a": [1, [2, {"b": None}], "x"], "c": {"d": b"\x01"}}
        assert decode_value(encode_value(value)) == value

    def test_tuple_encodes_as_list(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_empty_containers(self):
        assert decode_value(encode_value([])) == []
        assert decode_value(encode_value({})) == {}

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(CodecError):
            encode_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(CodecError):
            encode_value(object())


class TestBodies:
    def test_body_roundtrip(self):
        body = {"type": "x", "payload": {"k": [1.5, "v"]}}
        assert decode_body(encode_body(body)) == body

    def test_body_requires_dict(self):
        with pytest.raises(CodecError):
            encode_body([1, 2])  # type: ignore[arg-type]

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            decode_body(b"XX\x01\x08\x00")

    def test_bad_version_rejected(self):
        good = bytearray(encode_body({}))
        good[2] = 99
        with pytest.raises(CodecError, match="version"):
            decode_body(bytes(good))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_body(encode_body({}) + b"\x00")

    def test_truncated_rejected(self):
        encoded = encode_body({"key": "a-long-enough-string"})
        with pytest.raises(CodecError):
            decode_body(encoded[:-3])


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


@given(value=json_like)
def test_roundtrip_property(value):
    def normalize(item):
        if isinstance(item, tuple):
            return [normalize(sub) for sub in item]
        if isinstance(item, list):
            return [normalize(sub) for sub in item]
        if isinstance(item, dict):
            return {key: normalize(sub) for key, sub in item.items()}
        return item

    assert decode_value(encode_value(value)) == normalize(value)


@given(garbage=st.binary(max_size=64))
def test_decode_never_crashes_unexpectedly(garbage):
    """Arbitrary bytes either decode or raise CodecError — nothing else."""
    try:
        decode_body(garbage)
    except CodecError:
        pass
