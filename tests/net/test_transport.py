"""Tests for repro.net.transport."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ConfigurationError, TransportError, ValidationError
from repro.net import HttpRequest, HttpResponse, NetworkConditions, OutageWindow
from repro.net.transport import Network
from repro.obs import MetricsRegistry


class EchoEndpoint:
    def __init__(self):
        self.requests = []

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        self.requests.append(request)
        return HttpResponse(status=200, body=request.body)


def make_network(**conditions):
    network = Network(
        conditions=NetworkConditions(**conditions),
        rng=np.random.default_rng(0),
    )
    endpoint = EchoEndpoint()
    network.register("host-a", endpoint)
    return network, endpoint


class TestRouting:
    def test_delivers_and_returns_response(self):
        network, endpoint = make_network()
        response = network.send(HttpRequest("POST", "host-a", "/p", b"hello"))
        assert response.ok
        assert response.body == b"hello"
        assert len(endpoint.requests) == 1

    def test_unknown_host_raises(self):
        network, _ = make_network()
        with pytest.raises(TransportError, match="no endpoint"):
            network.send(HttpRequest("GET", "nowhere", "/"))

    def test_duplicate_registration_rejected(self):
        network, _ = make_network()
        with pytest.raises(TransportError):
            network.register("host-a", EchoEndpoint())

    def test_unregister(self):
        network, _ = make_network()
        network.unregister("host-a")
        assert not network.is_registered("host-a")
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", "host-a", "/"))

    def test_method_uppercased(self):
        assert HttpRequest("post", "h", "/").method == "POST"


class TestImpairments:
    def test_drops_raise_and_count(self):
        network, endpoint = make_network(drop_probability=1.0)
        with pytest.raises(TransportError, match="dropped"):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert network.stats.requests_dropped == 1
        assert endpoint.requests == []

    def test_partial_loss_rate(self):
        network, _ = make_network(drop_probability=0.5)
        delivered = 0
        for _ in range(200):
            try:
                network.send(HttpRequest("POST", "host-a", "/"))
                delivered += 1
            except TransportError:
                pass
        assert 60 < delivered < 140  # ~50% ± noise

    def test_latency_charged_to_manual_clock(self):
        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(base_latency_s=0.1, jitter_s=0.0),
            rng=np.random.default_rng(0),
            clock=clock,
        )
        network.register("host-a", EchoEndpoint())
        network.send(HttpRequest("POST", "host-a", "/"))
        assert clock.now() == pytest.approx(0.1)

    def test_invalid_conditions_rejected(self):
        with pytest.raises(ValidationError):
            NetworkConditions(drop_probability=1.5)
        with pytest.raises(ValidationError):
            NetworkConditions(base_latency_s=-1.0)


class TestResponseLegDrops:
    def test_response_drop_happens_after_delivery(self):
        """The delivered-but-unacked case: the endpoint handled the
        request, but the sender sees a TransportError."""
        network, endpoint = make_network(response_drop_probability=1.0)
        with pytest.raises(TransportError, match="request delivered"):
            network.send(HttpRequest("POST", "host-a", "/", b"payload"))
        assert len(endpoint.requests) == 1  # the server DID act
        assert network.stats.responses_dropped == 1
        assert network.stats.requests_dropped == 0
        assert network.stats.responses_delivered == 0
        assert network.stats.bytes_received == 0

    def test_request_drop_happens_before_delivery(self):
        network, endpoint = make_network(drop_probability=1.0)
        with pytest.raises(TransportError):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert endpoint.requests == []
        assert network.stats.responses_dropped == 0


class TestPerHostConditions:
    def test_override_applies_to_one_host_only(self):
        network, endpoint_a = make_network()
        endpoint_b = EchoEndpoint()
        network.register("host-b", endpoint_b)
        network.set_host_conditions(
            "host-b", NetworkConditions(drop_probability=1.0)
        )
        assert network.send(HttpRequest("POST", "host-a", "/")).ok
        with pytest.raises(TransportError):
            network.send(HttpRequest("POST", "host-b", "/"))
        assert len(endpoint_a.requests) == 1
        assert endpoint_b.requests == []

    def test_clear_reverts_to_defaults(self):
        network, _ = make_network()
        flaky = NetworkConditions(drop_probability=1.0)
        network.set_host_conditions("host-a", flaky)
        assert network.conditions_for("host-a") == flaky
        network.clear_host_conditions("host-a")
        assert network.conditions_for("host-a") == network.conditions
        assert network.send(HttpRequest("POST", "host-a", "/")).ok


class TestLatencySpikes:
    def test_spike_replaces_sampled_latency(self):
        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(
                base_latency_s=0.05,
                jitter_s=0.0,
                latency_spike_probability=1.0,
                latency_spike_s=3.0,
            ),
            rng=np.random.default_rng(0),
            clock=clock,
        )
        network.register("host-a", EchoEndpoint())
        network.send(HttpRequest("POST", "host-a", "/"))
        assert clock.now() == pytest.approx(3.0)
        assert network.stats.total_latency_s == pytest.approx(3.0)

    def test_spike_parameters_validated(self):
        with pytest.raises(ValidationError):
            NetworkConditions(latency_spike_probability=2.0)
        with pytest.raises(ValidationError):
            NetworkConditions(latency_spike_s=-1.0)


class TestOutages:
    def make_clocked_network(self):
        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
            rng=np.random.default_rng(0),
            time_source=clock,
        )
        network.register("host-a", EchoEndpoint())
        return network, clock

    def test_outage_silences_host_during_window(self):
        network, clock = self.make_clocked_network()
        network.schedule_outage(10.0, 20.0)
        assert network.send(HttpRequest("POST", "host-a", "/")).ok
        clock.set(10.0)
        with pytest.raises(TransportError, match="outage"):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert network.stats.outage_drops == 1
        clock.set(20.0)  # window is half-open: [start, end)
        assert network.send(HttpRequest("POST", "host-a", "/")).ok

    def test_outage_can_target_one_host(self):
        network, clock = self.make_clocked_network()
        network.register("host-b", EchoEndpoint())
        network.schedule_outage(0.0, 100.0, host="host-b")
        assert network.send(HttpRequest("POST", "host-a", "/")).ok
        with pytest.raises(TransportError, match="outage"):
            network.send(HttpRequest("POST", "host-b", "/"))

    def test_outage_requires_a_time_source(self):
        network, _ = make_network()  # no clock, no time_source
        with pytest.raises(ConfigurationError, match="time_source"):
            network.schedule_outage(0.0, 10.0)

    def test_window_validation_and_coverage(self):
        with pytest.raises(ValidationError):
            OutageWindow(start_s=5.0, end_s=5.0)
        window = OutageWindow(start_s=1.0, end_s=2.0, host="host-a")
        assert window.covers(1.5, "host-a")
        assert not window.covers(1.5, "host-b")
        assert not window.covers(2.0, "host-a")


class TestStats:
    def test_byte_and_request_counters(self):
        network, _ = make_network()
        network.send(HttpRequest("POST", "host-a", "/", b"abc"))
        network.send(HttpRequest("POST", "host-a", "/", b"wxyz"))
        assert network.stats.requests_sent == 2
        assert network.stats.bytes_sent == 7
        assert network.stats.bytes_received == 7  # echo
        assert network.stats.per_host_requests == {"host-a": 2}

    def test_unknown_host_does_not_skew_wire_stats(self):
        network, _ = make_network()
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", "nowhere", "/", b"lost"))
        assert network.stats.unknown_host_sends == 1
        assert network.stats.requests_sent == 0
        assert network.stats.bytes_sent == 0
        assert network.stats.per_host_requests == {}

    def test_failures_counted_by_reason(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
            rng=np.random.default_rng(0),
            time_source=clock,
            metrics=registry,
        )
        network.register("host-a", EchoEndpoint())
        failures = registry.counter("sor_net_failures_total", labels=("reason",))

        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", "nowhere", "/"))
        assert failures.value(reason="unknown_host") == 1

        network.schedule_outage(0.0, 1.0)
        with pytest.raises(TransportError):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert failures.value(reason="outage") == 1
        clock.set(1.0)

        network.set_host_conditions(
            "host-a", NetworkConditions(drop_probability=1.0)
        )
        with pytest.raises(TransportError):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert failures.value(reason="request_dropped") == 1

        network.set_host_conditions(
            "host-a", NetworkConditions(response_drop_probability=1.0)
        )
        with pytest.raises(TransportError):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert failures.value(reason="response_dropped") == 1
