"""Tests for repro.net.transport."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import TransportError, ValidationError
from repro.net import HttpRequest, HttpResponse, NetworkConditions
from repro.net.transport import Network


class EchoEndpoint:
    def __init__(self):
        self.requests = []

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        self.requests.append(request)
        return HttpResponse(status=200, body=request.body)


def make_network(**conditions):
    network = Network(
        conditions=NetworkConditions(**conditions),
        rng=np.random.default_rng(0),
    )
    endpoint = EchoEndpoint()
    network.register("host-a", endpoint)
    return network, endpoint


class TestRouting:
    def test_delivers_and_returns_response(self):
        network, endpoint = make_network()
        response = network.send(HttpRequest("POST", "host-a", "/p", b"hello"))
        assert response.ok
        assert response.body == b"hello"
        assert len(endpoint.requests) == 1

    def test_unknown_host_raises(self):
        network, _ = make_network()
        with pytest.raises(TransportError, match="no endpoint"):
            network.send(HttpRequest("GET", "nowhere", "/"))

    def test_duplicate_registration_rejected(self):
        network, _ = make_network()
        with pytest.raises(TransportError):
            network.register("host-a", EchoEndpoint())

    def test_unregister(self):
        network, _ = make_network()
        network.unregister("host-a")
        assert not network.is_registered("host-a")
        with pytest.raises(TransportError):
            network.send(HttpRequest("GET", "host-a", "/"))

    def test_method_uppercased(self):
        assert HttpRequest("post", "h", "/").method == "POST"


class TestImpairments:
    def test_drops_raise_and_count(self):
        network, endpoint = make_network(drop_probability=1.0)
        with pytest.raises(TransportError, match="dropped"):
            network.send(HttpRequest("POST", "host-a", "/"))
        assert network.stats.requests_dropped == 1
        assert endpoint.requests == []

    def test_partial_loss_rate(self):
        network, _ = make_network(drop_probability=0.5)
        delivered = 0
        for _ in range(200):
            try:
                network.send(HttpRequest("POST", "host-a", "/"))
                delivered += 1
            except TransportError:
                pass
        assert 60 < delivered < 140  # ~50% ± noise

    def test_latency_charged_to_manual_clock(self):
        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(base_latency_s=0.1, jitter_s=0.0),
            rng=np.random.default_rng(0),
            clock=clock,
        )
        network.register("host-a", EchoEndpoint())
        network.send(HttpRequest("POST", "host-a", "/"))
        assert clock.now() == pytest.approx(0.1)

    def test_invalid_conditions_rejected(self):
        with pytest.raises(ValidationError):
            NetworkConditions(drop_probability=1.5)
        with pytest.raises(ValidationError):
            NetworkConditions(base_latency_s=-1.0)


class TestStats:
    def test_byte_and_request_counters(self):
        network, _ = make_network()
        network.send(HttpRequest("POST", "host-a", "/", b"abc"))
        network.send(HttpRequest("POST", "host-a", "/", b"wxyz"))
        assert network.stats.requests_sent == 2
        assert network.stats.bytes_sent == 7
        assert network.stats.bytes_received == 7  # echo
        assert network.stats.per_host_requests == {"host-a": 2}
