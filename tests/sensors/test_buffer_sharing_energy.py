"""The paper's energy claim: shared buffers cut sensing energy when
multiple tasks sample the same sensor close together."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.sensors import ScalarProvider, SensorKind, SensorSpec


def run_two_tasks(freshness_s: float, *, acquisitions: int = 20) -> float:
    """Two tasks each take a single-reading burst at the same instants;
    returns the provider's total energy."""
    clock = ManualClock()
    spec = SensorSpec(
        "temperature",
        SensorKind.EXTERNAL,
        "F",
        energy_per_sample_mj=2.0,
        freshness_s=freshness_s,
    )
    provider = ScalarProvider(
        spec, clock, np.random.default_rng(0), signal=lambda t: 70.0
    )
    for step in range(acquisitions):
        clock.advance(60.0)
        provider.acquire_burst(1, 0.0)  # task A
        provider.acquire_burst(1, 0.0)  # task B, moments later
    return provider.energy_consumed_mj


class TestBufferSharingEnergy:
    def test_sharing_halves_energy(self):
        without = run_two_tasks(freshness_s=0.0)
        with_sharing = run_two_tasks(freshness_s=5.0)
        assert with_sharing == pytest.approx(without / 2)

    def test_reuse_counted(self):
        clock = ManualClock()
        spec = SensorSpec(
            "light", SensorKind.EMBEDDED, "lux", freshness_s=10.0
        )
        provider = ScalarProvider(
            spec, clock, np.random.default_rng(0), signal=lambda t: 1.0
        )
        provider.acquire_burst(1, 0.0)
        provider.acquire_burst(1, 0.0)
        assert provider.samples_taken == 1
        assert provider.samples_reused == 1

    def test_multi_reading_bursts_never_reuse(self):
        clock = ManualClock()
        spec = SensorSpec(
            "light", SensorKind.EMBEDDED, "lux", freshness_s=100.0
        )
        provider = ScalarProvider(
            spec, clock, np.random.default_rng(0), signal=lambda t: 1.0
        )
        provider.acquire_burst(5, 0.1)
        provider.acquire_burst(5, 0.1)
        assert provider.samples_taken == 10
        assert provider.samples_reused == 0

    def test_stale_buffer_not_reused(self):
        clock = ManualClock()
        spec = SensorSpec(
            "light", SensorKind.EMBEDDED, "lux", freshness_s=1.0
        )
        provider = ScalarProvider(
            spec, clock, np.random.default_rng(0), signal=lambda t: t
        )
        provider.acquire_burst(1, 0.0)
        clock.advance(10.0)
        burst = provider.acquire_burst(1, 0.0)
        assert provider.samples_taken == 2
        assert burst.values[0] == pytest.approx(10.0)
