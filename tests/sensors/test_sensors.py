"""Tests for sensor specs, buffers and providers."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import SensorError, ValidationError
from repro.common.geo import LatLon, haversine_m
from repro.core.features.types import GpsFix
from repro.sensors import (
    NEXUS4_SENSORS,
    SENSORDRONE_SENSORS,
    DataBuffer,
    GpsProvider,
    ScalarProvider,
    SensorKind,
    SensorSpec,
    VectorProvider,
)
from repro.sensors.buffer import BufferedReading


class TestSpecs:
    def test_nexus4_has_paper_sensors(self):
        for sensor in ("accelerometer", "gps", "light", "microphone", "wifi",
                       "compass", "gyroscope", "pressure"):
            assert sensor in NEXUS4_SENSORS
            assert NEXUS4_SENSORS[sensor].kind is SensorKind.EMBEDDED

    def test_sensordrone_has_environmental_sensors(self):
        for sensor in ("temperature", "humidity", "drone_light", "gas_co"):
            assert sensor in SENSORDRONE_SENSORS
            assert SENSORDRONE_SENSORS[sensor].kind is SensorKind.EXTERNAL

    def test_sensordrone_is_ten_sensors(self):
        assert len(SENSORDRONE_SENSORS) == 10  # as on the real device

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValidationError):
            SensorSpec("", SensorKind.EMBEDDED, "u")
        with pytest.raises(ValidationError):
            SensorSpec("x", SensorKind.EMBEDDED, "u", noise_std=-1.0)


class TestDataBuffer:
    def test_append_and_latest(self):
        buffer = DataBuffer()
        buffer.append(BufferedReading(1.0, "a"))
        buffer.append(BufferedReading(2.0, "b"))
        assert buffer.latest().value == "b"

    def test_capacity_evicts_oldest(self):
        buffer = DataBuffer(capacity=2)
        for index in range(4):
            buffer.append(BufferedReading(float(index), index))
        assert len(buffer) == 2
        assert buffer.latest().value == 3

    def test_fresh_reading_window(self):
        buffer = DataBuffer()
        buffer.append(BufferedReading(10.0, "x"))
        assert buffer.fresh_reading(10.5, freshness_s=1.0).value == "x"
        assert buffer.fresh_reading(12.0, freshness_s=1.0) is None

    def test_window_query(self):
        buffer = DataBuffer()
        for t in range(5):
            buffer.append(BufferedReading(float(t), t))
        assert [r.value for r in buffer.window(1.0, 3.0)] == [1, 2, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DataBuffer(capacity=0)


def make_scalar(clock=None, noise=0.0, freshness=1.0, energy=2.0):
    spec = SensorSpec(
        "temperature",
        SensorKind.EXTERNAL,
        "F",
        noise_std=noise,
        energy_per_sample_mj=energy,
        freshness_s=freshness,
    )
    clock = clock or ManualClock()
    return ScalarProvider(
        spec, clock, np.random.default_rng(0), signal=lambda t: 70.0 + t
    ), clock


class TestScalarProvider:
    def test_reads_signal_at_current_time(self):
        provider, clock = make_scalar()
        clock.advance(5.0)
        assert provider.read_now() == pytest.approx(75.0)

    def test_noise_applied(self):
        provider, _ = make_scalar(noise=1.0)
        readings = {provider.acquire_burst(20, 0.1).values}
        values = list(readings.pop())
        assert np.std(values) > 0.0

    def test_buffer_reuse_saves_energy(self):
        provider, clock = make_scalar(freshness=10.0)
        provider.read_now()
        first_energy = provider.energy_consumed_mj
        provider.read_now()  # within freshness → reused
        assert provider.energy_consumed_mj == first_energy
        assert provider.samples_reused == 1
        clock.advance(11.0)
        provider.read_now()  # stale → fresh sample
        assert provider.energy_consumed_mj == first_energy + 2.0

    def test_burst_timestamps_and_duration(self):
        provider, clock = make_scalar()
        clock.advance(100.0)
        burst = provider.acquire_burst(5, 2.0)
        assert burst.timestamp == 100.0
        assert burst.duration_s == 8.0
        assert len(burst.values) == 5
        # values sampled along the burst: 170, 172, ...
        assert burst.values[0] == pytest.approx(170.0)
        assert burst.values[4] == pytest.approx(178.0)

    def test_burst_charges_per_sample(self):
        provider, _ = make_scalar()
        provider.acquire_burst(4, 0.5)
        assert provider.energy_consumed_mj == pytest.approx(8.0)

    def test_invalid_burst_params(self):
        provider, _ = make_scalar()
        with pytest.raises(SensorError):
            provider.acquire_burst(0, 1.0)
        with pytest.raises(SensorError):
            provider.acquire_burst(1, -1.0)


class TestVectorProvider:
    def test_tuple_readings(self):
        spec = SensorSpec("accelerometer", SensorKind.EMBEDDED, "m/s^2")
        provider = VectorProvider(
            spec,
            ManualClock(),
            np.random.default_rng(0),
            signal=lambda t: (0.0, 0.0, 9.81),
        )
        burst = provider.acquire_burst(3, 0.1)
        assert all(len(value) == 3 for value in burst.values)
        assert burst.values[0][2] == pytest.approx(9.81)


class TestGpsProvider:
    def make(self, fix_error=3.0):
        spec = SensorSpec("gps", SensorKind.EMBEDDED, "deg", energy_per_sample_mj=25.0)
        truth = GpsFix(43.05, -76.15, 120.0)
        provider = GpsProvider(
            spec,
            ManualClock(),
            np.random.default_rng(0),
            signal=lambda t: truth,
            fix_error_m=fix_error,
        )
        return provider, truth

    def test_fix_error_bounded(self):
        provider, truth = self.make(fix_error=3.0)
        burst = provider.acquire_burst(50, 0.1)
        distances = [
            haversine_m(
                LatLon(truth.latitude, truth.longitude),
                LatLon(fix.latitude, fix.longitude),
            )
            for fix in burst.values
        ]
        assert 0.5 < float(np.mean(distances)) < 10.0

    def test_zero_error_exact(self):
        provider, truth = self.make(fix_error=0.0)
        provider.altitude_error_m = 0.0
        fix = provider.read_now()
        assert fix.latitude == pytest.approx(truth.latitude)
        assert fix.altitude_m == pytest.approx(truth.altitude_m)
