"""Tests for the multi-kernel (per-feature σ) scheduling extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.core.scheduling import (
    FeatureKernel,
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    MultiKernelGreedyScheduler,
    MultiKernelObjective,
    SchedulingPeriod,
    SchedulingProblem,
)

FEATURES = [
    FeatureKernel("temperature", GaussianKernel(60.0), weight=1.0),
    FeatureKernel("acceleration", GaussianKernel(5.0), weight=2.0),
]


def make_problem(num_users=5, budget=6):
    period = SchedulingPeriod(0.0, 1_000.0, 100)
    users = [
        MobileUser(f"u{i}", i * 100.0, 1_000.0, budget) for i in range(num_users)
    ]
    return SchedulingProblem(period, users, GaussianKernel(10.0))


class TestObjective:
    def test_value_is_weighted_sum(self):
        from repro.core.scheduling.objective import CoverageObjective

        period = SchedulingPeriod(0.0, 1_000.0, 100)
        blended = MultiKernelObjective(period, FEATURES)
        singles = [
            (feature, CoverageObjective(period, feature.kernel))
            for feature in FEATURES
        ]
        for instant in (5, 30, 31, 80):
            blended.add(instant)
            for _, single in singles:
                single.add(instant)
        expected = sum(f.weight * s.value() for f, s in singles)
        assert blended.value() == pytest.approx(expected, rel=1e-12)

    def test_gain_matches_realized(self):
        period = SchedulingPeriod(0.0, 1_000.0, 100)
        objective = MultiKernelObjective(period, FEATURES)
        objective.add(10)
        predicted = objective.gain(40)
        before = objective.value()
        objective.add(40)
        assert objective.value() - before == pytest.approx(predicted, rel=1e-9)

    def test_gains_fast_matches_gain(self):
        period = SchedulingPeriod(0.0, 1_000.0, 100)
        objective = MultiKernelObjective(period, FEATURES)
        objective.add(50)
        fast = objective.gains_fast()
        for instant in (0, 25, 49, 50, 51, 99):
            assert fast[instant] == pytest.approx(objective.gain(instant), abs=1e-10)

    @settings(max_examples=25)
    @given(
        base=st.sets(st.integers(0, 99), max_size=5),
        extra=st.integers(0, 99),
        candidate=st.integers(0, 99),
    )
    def test_blend_is_monotone_submodular(self, base, extra, candidate):
        period = SchedulingPeriod(0.0, 1_000.0, 100)
        small = MultiKernelObjective(period, FEATURES)
        for instant in base:
            small.add(instant)
        big = MultiKernelObjective(period, FEATURES)
        for instant in base | {extra}:
            big.add(instant)
        assert big.value() >= small.value() - 1e-9
        assert big.gain(candidate) <= small.gain(candidate) + 1e-9

    def test_per_feature_coverage_reported(self):
        period = SchedulingPeriod(0.0, 1_000.0, 100)
        objective = MultiKernelObjective(period, FEATURES)
        for instant in range(0, 100, 10):
            objective.add(instant)
        coverage = objective.per_feature_coverage()
        # The wide temperature kernel is easy to cover; the narrow
        # acceleration kernel much harder.
        assert coverage["temperature"] > 0.9
        assert coverage["acceleration"] < coverage["temperature"]

    def test_validation(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        with pytest.raises(ValidationError):
            MultiKernelObjective(period, [])
        with pytest.raises(ValidationError):
            MultiKernelObjective(
                period,
                [
                    FeatureKernel("x", GaussianKernel(1.0)),
                    FeatureKernel("x", GaussianKernel(2.0)),
                ],
            )
        with pytest.raises(ValidationError):
            FeatureKernel("x", GaussianKernel(1.0), weight=-1.0)


class TestScheduler:
    def test_schedule_is_feasible(self):
        problem = make_problem()
        schedule = MultiKernelGreedyScheduler(FEATURES).solve(problem)
        schedule.validate()
        assert schedule.objective_value > 0

    def test_beats_single_kernel_on_blended_metric(self):
        """Scheduling for the wrong (single) kernel leaves blended value
        on the table relative to optimizing the blend directly."""
        problem = make_problem(num_users=4, budget=5)
        blended_schedule = MultiKernelGreedyScheduler(FEATURES).solve(problem)

        # Schedule greedily for the WIDE kernel only, then evaluate the
        # result under the blended objective.
        wide_only = SchedulingProblem(
            problem.period, problem.users, FEATURES[0].kernel
        )
        single_schedule = GreedyScheduler().solve(wide_only)
        evaluation = MultiKernelObjective(problem.period, FEATURES)
        for instant in single_schedule.pooled_instants:
            evaluation.add(instant)
        assert blended_schedule.objective_value >= evaluation.value() - 1e-9

    def test_per_feature_coverage_exposed(self):
        scheduler = MultiKernelGreedyScheduler(FEATURES)
        scheduler.solve(make_problem())
        coverage = scheduler.last_per_feature_coverage
        assert set(coverage) == {"temperature", "acceleration"}
        assert all(0.0 <= value <= 1.0 for value in coverage.values())

    def test_zero_weight_feature_ignored_for_gain(self):
        features = [
            FeatureKernel("real", GaussianKernel(20.0), weight=1.0),
            FeatureKernel("ghost", GaussianKernel(5.0), weight=0.0),
        ]
        problem = make_problem(num_users=2, budget=4)
        schedule = MultiKernelGreedyScheduler(features).solve(problem)
        # Objective value must equal the single-kernel value of "real".
        from repro.core.scheduling.objective import coverage_of_instants

        expected = coverage_of_instants(
            problem.period, features[0].kernel, set(schedule.pooled_instants)
        )
        assert schedule.objective_value == pytest.approx(expected, rel=1e-9)
