"""Tests for the equation-(2) per-user scheduler and metric."""

import pytest

from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    PerUserGreedyScheduler,
    SchedulingPeriod,
    SchedulingProblem,
    average_coverage,
    per_user_sum_value,
)


def overlapping_problem(num_users=4, budget=5):
    """Users fully overlapping in time — where eq. 2 and eq. 4 diverge."""
    period = SchedulingPeriod(0.0, 1_000.0, 100)
    users = [MobileUser(f"u{i}", 0.0, 1_000.0, budget) for i in range(num_users)]
    return SchedulingProblem(period, users, GaussianKernel(sigma=30.0))


class TestPerUserGreedy:
    def test_schedule_feasible(self):
        schedule = PerUserGreedyScheduler().solve(overlapping_problem())
        schedule.validate()

    def test_identical_users_get_identical_schedules(self):
        """Equation (2) is separable: two users with the same window and
        budget independently pick the same instants."""
        schedule = PerUserGreedyScheduler().solve(overlapping_problem(num_users=2))
        assert schedule.assignments["u0"] == schedule.assignments["u1"]

    def test_pooled_greedy_interleaves_instead(self):
        schedule = GreedyScheduler().solve(overlapping_problem(num_users=2))
        assert schedule.assignments["u0"] != schedule.assignments["u1"]

    def test_objective_value_is_eq2_total(self):
        schedule = PerUserGreedyScheduler().solve(overlapping_problem())
        assert schedule.objective_value == pytest.approx(
            per_user_sum_value(schedule), rel=1e-9
        )

    def test_single_user_matches_pooled_greedy(self):
        """With one user the two objectives coincide (up to float-level
        tie-breaking between equally good instants)."""
        problem = overlapping_problem(num_users=1)
        peruser = PerUserGreedyScheduler().solve(problem)
        pooled = GreedyScheduler().solve(problem)
        assert peruser.objective_value == pytest.approx(
            pooled.objective_value, rel=1e-3
        )

    def test_each_wins_its_own_metric(self):
        problem = overlapping_problem()
        peruser = PerUserGreedyScheduler().solve(problem)
        pooled = GreedyScheduler().solve(problem)
        assert per_user_sum_value(peruser) >= per_user_sum_value(pooled) - 1e-9
        assert average_coverage(pooled) >= average_coverage(peruser) - 1e-9

    def test_budget_respected_and_stops_at_zero_gain(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        users = [MobileUser("u", 0.0, 100.0, 50)]
        problem = SchedulingProblem(period, users, GaussianKernel(5.0))
        schedule = PerUserGreedyScheduler().solve(problem)
        assert len(schedule.assignments["u"]) <= 10
