"""Property-based tests for the versioned ranking cache.

Three invariants from the cache's contract:

* serving from the cache is invisible — cached and uncached paths
  produce bitwise-identical reports;
* bumping the data version always invalidates — the next request
  recomputes instead of replaying the stale entry;
* a zero-weight (or entirely uncovered) feature is equivalent to the
  feature never having been sensed at all.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.ranking import MAX, MIN, FeaturePreference, PreferenceProfile
from repro.db import Database
from repro.obs import MetricsRegistry
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    bump_data_version,
)
from repro.server.schemas import create_all_tables

CATEGORY = "coffee_shop"
FEATURES = ("temperature", "noise", "wifi")

# Feature values are drawn from a small lattice so that ties (the
# interesting case for stable sorts) actually happen.
values = st.sampled_from([0.0, 1.0, 2.5, 40.0, 70.0])
preferred = st.one_of(
    st.sampled_from([MAX, MIN]), st.sampled_from([0.0, 1.0, 65.0, 70.0])
)
weights = st.integers(0, 5)

places = st.lists(
    st.tuples(*(values for _ in FEATURES)), min_size=2, max_size=5
)
profiles = st.fixed_dictionaries(
    {feature: st.tuples(preferred, weights) for feature in FEATURES}
)


def build_database(place_rows):
    database = Database(name="prop", metrics=MetricsRegistry())
    create_all_tables(database)
    table = database.table("feature_data")
    for index, row in enumerate(place_rows):
        for feature, value in zip(FEATURES, row):
            table.insert(
                {
                    "place_id": f"p{index}",
                    "category": CATEGORY,
                    "feature": feature,
                    "value": value,
                    "computed_at": 0.0,
                }
            )
    bump_data_version(database, CATEGORY)
    return database


def build_profile(prefs, *, drop=()):
    stated = {
        feature: FeaturePreference(pref, weight)
        for feature, (pref, weight) in prefs.items()
        if feature not in drop
    }
    if not stated:
        return None
    return PreferenceProfile("prop-user", stated)


def has_positive_weight(prefs, *, drop=()):
    return any(
        weight > 0 for feature, (_, weight) in prefs.items()
        if feature not in drop
    )


def assert_reports_equal(left, right):
    assert left.ranking.items == right.ranking.items
    assert left.feature_names == right.feature_names
    assert left.place_ids == right.place_ids
    assert np.array_equal(left.feature_matrix, right.feature_matrix)
    assert [r.items for r in left.individual] == [
        r.items for r in right.individual
    ]
    assert left.weights == right.weights
    assert left.weighted_footrule == right.weighted_footrule
    assert left.weighted_kemeny == right.weighted_kemeny


@settings(max_examples=60, deadline=None)
@given(place_rows=places, prefs=profiles)
def test_cached_rank_identical_to_uncached(place_rows, prefs):
    if not has_positive_weight(prefs):
        return
    database = build_database(place_rows)
    profile = build_profile(prefs)
    cached = PersonalizableRanker(
        database,
        cache=RankingCache(metrics=MetricsRegistry()),
        metrics=MetricsRegistry(),
    )
    uncached = PersonalizableRanker(database, metrics=MetricsRegistry())
    first = cached.rank(CATEGORY, profile)
    second = cached.rank(CATEGORY, profile)  # served from the cache
    assert second is first
    assert_reports_equal(first, uncached.rank(CATEGORY, profile))


@settings(max_examples=40, deadline=None)
@given(place_rows=places, prefs=profiles)
def test_version_bump_always_invalidates(place_rows, prefs):
    if not has_positive_weight(prefs):
        return
    database = build_database(place_rows)
    profile = build_profile(prefs)
    cache = RankingCache(metrics=MetricsRegistry())
    ranker = PersonalizableRanker(
        database, cache=cache, metrics=MetricsRegistry()
    )
    ranker.rank(CATEGORY, profile)
    bump_data_version(database, CATEGORY)
    ranker.rank(CATEGORY, profile)
    assert cache.hits == 0
    assert cache.misses == 2


@settings(max_examples=60, deadline=None)
@given(
    place_rows=places,
    prefs=profiles,
    dropped=st.sampled_from(FEATURES),
    uncovered=st.booleans(),
)
def test_zero_weight_equals_feature_absent(place_rows, prefs, dropped, uncovered):
    """Weight 0 (or not stating the feature at all) == feature never sensed."""
    if not has_positive_weight(prefs, drop=(dropped,)):
        return
    # Left: all features sensed, `dropped` carries weight 0 (or is simply
    # not covered by the profile when `uncovered` is set).
    full = build_database(place_rows)
    if uncovered:
        left_profile = build_profile(prefs, drop=(dropped,))
    else:
        left_profile = build_profile(
            {
                **prefs,
                dropped: (prefs[dropped][0], 0),
            }
        )
    left = PersonalizableRanker(full, metrics=MetricsRegistry()).rank(
        CATEGORY, left_profile
    )
    # Right: the feature was never sensed anywhere.
    index = FEATURES.index(dropped)
    trimmed_rows = [
        tuple(v for i, v in enumerate(row) if i != index) for row in place_rows
    ]
    trimmed = Database(name="trimmed", metrics=MetricsRegistry())
    create_all_tables(trimmed)
    table = trimmed.table("feature_data")
    for row_index, row in enumerate(trimmed_rows):
        for feature, value in zip(
            tuple(f for f in FEATURES if f != dropped), row
        ):
            table.insert(
                {
                    "place_id": f"p{row_index}",
                    "category": CATEGORY,
                    "feature": feature,
                    "value": value,
                    "computed_at": 0.0,
                }
            )
    bump_data_version(trimmed, CATEGORY)
    right_profile = build_profile(prefs, drop=(dropped,))
    right = PersonalizableRanker(trimmed, metrics=MetricsRegistry()).rank(
        CATEGORY, right_profile
    )
    assert_reports_equal(left, right)
