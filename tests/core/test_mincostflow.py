"""Tests for the min-cost flow solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.common.errors import RankingError
from repro.core.ranking import MinCostFlow


class TestBasics:
    def test_single_path(self):
        network = MinCostFlow(3)
        network.add_edge(0, 1, 1, 2.0)
        network.add_edge(1, 2, 1, 3.0)
        assert network.solve(0, 2, 1) == pytest.approx(5.0)

    def test_prefers_cheap_path(self):
        network = MinCostFlow(4)
        network.add_edge(0, 1, 1, 10.0)
        network.add_edge(1, 3, 1, 10.0)
        network.add_edge(0, 2, 1, 1.0)
        network.add_edge(2, 3, 1, 1.0)
        assert network.solve(0, 3, 1) == pytest.approx(2.0)

    def test_splits_over_paths_when_needed(self):
        network = MinCostFlow(4)
        network.add_edge(0, 1, 1, 1.0)
        network.add_edge(1, 3, 1, 1.0)
        network.add_edge(0, 2, 1, 5.0)
        network.add_edge(2, 3, 1, 5.0)
        assert network.solve(0, 3, 2) == pytest.approx(12.0)

    def test_insufficient_capacity_raises(self):
        network = MinCostFlow(2)
        network.add_edge(0, 1, 1, 1.0)
        with pytest.raises(RankingError, match="supports only"):
            network.solve(0, 1, 2)

    def test_flow_on_reports_routed_edges(self):
        network = MinCostFlow(3)
        cheap = network.add_edge(0, 1, 1, 1.0)
        network.add_edge(1, 2, 1, 1.0)
        network.solve(0, 2, 1)
        assert network.flow_on(cheap) == 1

    def test_negative_cost_rejected(self):
        network = MinCostFlow(2)
        with pytest.raises(RankingError):
            network.add_edge(0, 1, 1, -1.0)

    def test_invalid_nodes_rejected(self):
        network = MinCostFlow(2)
        with pytest.raises(RankingError):
            network.add_edge(0, 5, 1, 1.0)
        with pytest.raises(RankingError):
            network.solve(0, 0, 1)


def assignment_via_flow(cost_matrix):
    """Solve an assignment problem with our flow solver."""
    count = cost_matrix.shape[0]
    network = MinCostFlow(2 * count + 2)
    source, sink = 0, 2 * count + 1
    edges = {}
    for left in range(count):
        network.add_edge(source, 1 + left, 1, 0.0)
        for right in range(count):
            edges[(left, right)] = network.add_edge(
                1 + left, 1 + count + right, 1, float(cost_matrix[left, right])
            )
    for right in range(count):
        network.add_edge(1 + count + right, sink, 1, 0.0)
    total = network.solve(source, sink, count)
    matching = {
        left: right
        for (left, right), edge_id in edges.items()
        if network.flow_on(edge_id) > 0
    }
    return total, matching


class TestAssignmentOptimality:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), size=st.integers(2, 6))
    def test_matches_scipy_hungarian(self, seed, size):
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 50, size=(size, size)).astype(float)
        flow_total, matching = assignment_via_flow(cost)
        rows, cols = linear_sum_assignment(cost)
        scipy_total = float(cost[rows, cols].sum())
        assert flow_total == pytest.approx(scipy_total)
        # matching must be a permutation
        assert sorted(matching) == list(range(size))
        assert sorted(matching.values()) == list(range(size))

    def test_matches_exhaustive_small(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        flow_total, _ = assignment_via_flow(cost)
        best = min(
            sum(cost[i, p[i]] for i in range(3))
            for p in itertools.permutations(range(3))
        )
        assert flow_total == pytest.approx(best)
