"""Tests for preferences, Γ matrix and individual rankings (Algorithm 2
steps 1–2)."""

import numpy as np
import pytest

from repro.common.errors import RankingError
from repro.core.ranking import (
    MAX,
    MIN,
    FeaturePreference,
    PreferenceProfile,
    individual_rankings,
    preference_distance_matrix,
)


def profile(**prefs):
    return PreferenceProfile(
        "tester", {name: pref for name, pref in prefs.items()}
    )


class TestFeaturePreference:
    def test_weight_range_enforced(self):
        FeaturePreference(1.0, 0)
        FeaturePreference(1.0, 5)
        with pytest.raises(RankingError):
            FeaturePreference(1.0, 6)
        with pytest.raises(RankingError):
            FeaturePreference(1.0, -1)

    def test_non_integer_weight_rejected(self):
        with pytest.raises(RankingError):
            FeaturePreference(1.0, 2.5)  # type: ignore[arg-type]

    def test_sentinel_resolution(self):
        assert FeaturePreference(MAX, 3).resolve(0.0, 9.0) == 9.0
        assert FeaturePreference(MIN, 3).resolve(0.0, 9.0) == 0.0
        assert FeaturePreference(4.2, 3).resolve(0.0, 9.0) == 4.2

    def test_non_numeric_preferred_rejected(self):
        with pytest.raises(RankingError):
            FeaturePreference("hot", 1)  # type: ignore[arg-type]


class TestPreferenceProfile:
    def test_lookup(self):
        alice = profile(temperature=FeaturePreference(73.0, 2))
        assert alice.weight("temperature") == 2
        assert alice.preference("temperature").preferred == 73.0

    def test_unknown_feature_rejected(self):
        alice = profile(temperature=FeaturePreference(73.0, 2))
        with pytest.raises(RankingError):
            alice.weight("noise")

    def test_covers(self):
        alice = profile(
            a=FeaturePreference(1.0, 1), b=FeaturePreference(2.0, 2)
        )
        assert alice.covers(["a", "b"])
        assert not alice.covers(["a", "z"])

    def test_empty_profile_rejected(self):
        with pytest.raises(RankingError):
            PreferenceProfile("nobody", {})


class TestGammaMatrix:
    def test_absolute_distance(self):
        H = np.array([[70.0], [76.0]])
        gamma = preference_distance_matrix(
            H, ["temperature"], profile(temperature=FeaturePreference(73.0, 1))
        )
        np.testing.assert_allclose(gamma, [[3.0], [3.0]])

    def test_max_sentinel_prefers_largest(self):
        H = np.array([[1.0], [5.0], [3.0]])
        gamma = preference_distance_matrix(
            H, ["wifi"], profile(wifi=FeaturePreference(MAX, 1))
        )
        np.testing.assert_allclose(gamma.ravel(), [4.0, 0.0, 2.0])

    def test_min_sentinel_prefers_smallest(self):
        H = np.array([[1.0], [5.0]])
        gamma = preference_distance_matrix(
            H, ["noise"], profile(noise=FeaturePreference(MIN, 1))
        )
        np.testing.assert_allclose(gamma.ravel(), [0.0, 4.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RankingError):
            preference_distance_matrix(
                np.zeros((2, 2)), ["only-one"], profile(x=FeaturePreference(1.0, 1))
            )

    def test_1d_matrix_rejected(self):
        with pytest.raises(RankingError):
            preference_distance_matrix(
                np.zeros(3), ["f"], profile(f=FeaturePreference(1.0, 1))
            )


class TestIndividualRankings:
    def test_sorted_per_column_ascending(self):
        gamma = np.array(
            [
                [2.0, 0.0],
                [0.0, 1.0],
                [1.0, 2.0],
            ]
        )
        rankings = individual_rankings(gamma, ["p0", "p1", "p2"])
        assert rankings[0].items == ("p1", "p2", "p0")
        assert rankings[1].items == ("p0", "p1", "p2")

    def test_ties_stable_by_place_order(self):
        gamma = np.array([[1.0], [1.0], [0.0]])
        ranking = individual_rankings(gamma, ["x", "y", "z"])[0]
        assert ranking.items == ("z", "x", "y")

    def test_row_mismatch_rejected(self):
        with pytest.raises(RankingError):
            individual_rankings(np.zeros((2, 1)), ["only-one"])


class TestFiniteValidation:
    def test_nan_in_feature_matrix_names_place_and_feature(self):
        H = np.array([[70.0, 40.0], [float("nan"), 30.0]])
        with pytest.raises(RankingError, match=r"'p2'.*'temperature'"):
            preference_distance_matrix(
                H,
                ["temperature", "noise"],
                profile(
                    temperature=FeaturePreference(70.0, 3),
                    noise=FeaturePreference(MIN, 1),
                ),
                place_ids=["p1", "p2"],
            )

    def test_inf_rejected_without_labels(self):
        H = np.array([[float("inf")], [1.0]])
        with pytest.raises(RankingError, match="row 0.*'noise'"):
            preference_distance_matrix(
                H, ["noise"], profile(noise=FeaturePreference(MIN, 1))
            )

    def test_nan_gamma_rejected_in_individual_rankings(self):
        gamma = np.array([[0.0], [float("nan")]])
        with pytest.raises(RankingError, match="'p1'"):
            individual_rankings(gamma, ["p0", "p1"])

    def test_require_finite_features_passes_clean_matrix(self):
        from repro.core.ranking import require_finite_features

        require_finite_features(np.array([[1.0, 2.0]]), ["a", "b"], ["p"])
