"""Tests for ranking distances (Kemeny, footrule, weighted variants)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import RankingError
from repro.core.ranking import (
    Ranking,
    footrule_distance,
    kemeny_distance,
    weighted_footrule_distance,
    weighted_kemeny_distance,
)

ITEMS = tuple("ABCDE")
permutations = st.permutations(ITEMS).map(Ranking)


class TestPaperExample:
    def test_kemeny_worked_example(self):
        """The paper's Section IV-B example: d_K(ABC, BCA) = 2."""
        assert kemeny_distance(Ranking("ABC"), Ranking("BCA")) == 2

    def test_footrule_of_example(self):
        # A: |1-3|=2, B: |2-1|=1, C: |3-2|=1 → 4
        assert footrule_distance(Ranking("ABC"), Ranking("BCA")) == 4


class TestMetricProperties:
    @given(ranking=permutations)
    def test_identity(self, ranking):
        assert kemeny_distance(ranking, ranking) == 0
        assert footrule_distance(ranking, ranking) == 0

    @given(first=permutations, second=permutations)
    def test_symmetry(self, first, second):
        assert kemeny_distance(first, second) == kemeny_distance(second, first)
        assert footrule_distance(first, second) == footrule_distance(second, first)

    @given(first=permutations, second=permutations, third=permutations)
    def test_triangle_inequality(self, first, second, third):
        assert kemeny_distance(first, third) <= (
            kemeny_distance(first, second) + kemeny_distance(second, third)
        )
        assert footrule_distance(first, third) <= (
            footrule_distance(first, second) + footrule_distance(second, third)
        )

    @given(first=permutations, second=permutations)
    def test_diaconis_graham_bounds(self, first, second):
        """Equation (10): d_K ≤ d_f ≤ 2·d_K."""
        kemeny = kemeny_distance(first, second)
        footrule = footrule_distance(first, second)
        assert kemeny <= footrule <= 2 * kemeny

    @given(first=permutations, second=permutations)
    def test_kemeny_bounded_by_pairs(self, first, second):
        pairs = len(ITEMS) * (len(ITEMS) - 1) // 2
        assert 0 <= kemeny_distance(first, second) <= pairs

    def test_reversal_maximizes_kemeny(self):
        forward = Ranking(ITEMS)
        backward = Ranking(reversed(ITEMS))
        assert kemeny_distance(forward, backward) == 10  # C(5,2)


class TestWeightedVariants:
    def test_weighted_kemeny_linear_in_weights(self):
        target = Ranking("ABC")
        collection = [Ranking("ABC"), Ranking("BCA")]
        assert weighted_kemeny_distance(target, collection, [1, 0]) == 0
        assert weighted_kemeny_distance(target, collection, [0, 1]) == 2
        assert weighted_kemeny_distance(target, collection, [3, 2]) == 4

    def test_weighted_footrule(self):
        target = Ranking("ABC")
        collection = [Ranking("BCA")]
        assert weighted_footrule_distance(target, collection, [2]) == 8

    def test_mismatched_weights_rejected(self):
        with pytest.raises(RankingError):
            weighted_kemeny_distance(Ranking("AB"), [Ranking("AB")], [1, 2])

    def test_negative_weights_rejected(self):
        with pytest.raises(RankingError):
            weighted_kemeny_distance(Ranking("AB"), [Ranking("AB")], [-1])


class TestRankingType:
    def test_positions_one_based(self):
        ranking = Ranking("BAC")
        assert ranking.position("B") == 1
        assert ranking.position("C") == 3

    def test_duplicates_rejected(self):
        with pytest.raises(RankingError):
            Ranking("AA")

    def test_empty_rejected(self):
        with pytest.raises(RankingError):
            Ranking([])

    def test_unknown_item_rejected(self):
        with pytest.raises(RankingError):
            Ranking("AB").position("Z")

    def test_different_item_sets_rejected(self):
        with pytest.raises(RankingError):
            kemeny_distance(Ranking("AB"), Ranking("AC"))

    def test_equality_and_hash(self):
        assert Ranking("AB") == Ranking(["A", "B"])
        assert hash(Ranking("AB")) == hash(Ranking("AB"))
        assert Ranking("AB") != Ranking("BA")
