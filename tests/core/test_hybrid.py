"""Tests for hybrid subjective + objective ranking."""

import pytest

from repro.common.errors import RankingError
from repro.core.ranking import (
    Ranking,
    aggregate_hybrid,
    subjective_ranking,
    weighted_footrule_distance,
)


class TestSubjectiveRanking:
    def test_orders_by_stars_descending(self):
        ratings = {"a": 3.5, "b": 4.8, "c": 2.0}
        assert subjective_ranking(ratings, ["a", "b", "c"]).items == ("b", "a", "c")

    def test_ties_keep_place_order(self):
        ratings = {"a": 4.0, "b": 4.0, "c": 1.0}
        assert subjective_ranking(ratings, ["b", "a", "c"]).items == ("b", "a", "c")

    def test_many_way_tie_pins_full_place_order(self):
        # Pins the tie-break exactly: the index-map fast path must order
        # equal-rated places by their position in place_ids, same as the
        # old place_ids.index() key did.
        ratings = {"e": 4.0, "b": 4.0, "a": 4.0, "c": 4.0, "d": 2.0}
        place_ids = ["e", "b", "a", "d", "c"]
        assert subjective_ranking(ratings, place_ids).items == (
            "e", "b", "a", "c", "d",
        )

    def test_missing_rating_rejected(self):
        with pytest.raises(RankingError, match="missing"):
            subjective_ranking({"a": 4.0}, ["a", "b"])

    def test_extra_ratings_ignored(self):
        ratings = {"a": 1.0, "b": 2.0, "zzz": 5.0}
        assert subjective_ranking(ratings, ["a", "b"]).items == ("b", "a")


class TestAggregateHybrid:
    OBJECTIVE = [Ranking("ABC"), Ranking("ACB")]
    WEIGHTS = [3, 2]

    def test_zero_weight_is_pure_objective(self):
        from repro.core.ranking import aggregate_footrule

        pure = aggregate_footrule(self.OBJECTIVE, self.WEIGHTS)
        hybrid = aggregate_hybrid(
            self.OBJECTIVE, self.WEIGHTS, {"A": 1.0, "B": 5.0, "C": 3.0},
            subjective_weight=0,
        )
        assert hybrid == pure

    def test_dominant_subjective_weight_flips_result(self):
        # Objective says A first; the crowd loves C.
        ratings = {"A": 1.0, "B": 2.0, "C": 5.0}
        blended = aggregate_hybrid(
            self.OBJECTIVE, [1, 1], ratings, subjective_weight=5
        )
        assert blended.items[0] in ("C", "A")
        # With weight 5 vs combined 2, the subjective ranking C,B,A should
        # pull C to the top.
        assert blended.items[0] == "C"

    def test_result_minimizes_blended_footrule(self):
        import itertools

        ratings = {"A": 2.0, "B": 5.0, "C": 4.0}
        blended = aggregate_hybrid(
            self.OBJECTIVE, self.WEIGHTS, ratings, subjective_weight=3
        )
        subjective = subjective_ranking(ratings, list("ABC"))
        collection = list(self.OBJECTIVE) + [subjective]
        weights = list(self.WEIGHTS) + [3]
        best = min(
            weighted_footrule_distance(Ranking(p), collection, weights)
            for p in itertools.permutations("ABC")
        )
        assert weighted_footrule_distance(
            blended, collection, weights
        ) == pytest.approx(best)

    def test_invalid_weight_rejected(self):
        with pytest.raises(RankingError):
            aggregate_hybrid(self.OBJECTIVE, self.WEIGHTS, {}, subjective_weight=7)
        with pytest.raises(RankingError):
            aggregate_hybrid(
                self.OBJECTIVE, self.WEIGHTS, {}, subjective_weight=2.5  # type: ignore
            )

    def test_empty_objective_rejected(self):
        with pytest.raises(RankingError):
            aggregate_hybrid([], [], {"A": 1.0})
