"""Kernel-matrix cache and kernel-weight validation regressions.

The cache regressions pin two production bugs:

* the module-level ``_MATRIX_CACHE`` OrderedDict used to be mutated
  without a lock, so concurrent scheduler calls in the server worker
  pool could corrupt it mid-``move_to_end`` — the hammering test runs
  many threads through hit/miss/evict churn and then audits the
  internal byte ledger;
* eviction used to count entries, not bytes, so a handful of
  long-horizon bands could pin hundreds of megabytes — the eviction
  tests drive the byte cap directly and check the exported
  ``sor_kernel_matrix_cache_bytes`` gauge.

The validation regressions pin the ``log1p(-p)`` trap: a kernel
returning p = 1 at nonzero distance used to silently write −inf into
the survival state; both backends must now refuse it with a
:class:`~repro.common.errors.KernelValidationError` naming the kernel
and the offending distance.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.common.errors import KernelValidationError
from repro.core.scheduling import (
    CoverageObjective,
    GaussianKernel,
    ReferenceCoverageObjective,
    SchedulingPeriod,
    TriangularKernel,
    clear_kernel_matrix_cache,
    kernel_matrices,
    kernel_matrix_cache_bytes,
    validate_kernel_weights,
)
from repro.core.scheduling import objective as objective_module
from repro.obs import MetricsRegistry, use_metrics

PERIOD = SchedulingPeriod(0.0, 600.0, 64)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_kernel_matrix_cache()
    yield
    clear_kernel_matrix_cache()


class StubKernel:
    """Uncacheable kernel emitting a fixed off-diagonal probability.

    Deliberately has no ``cache_key`` so invalid weights can never
    poison the shared cache and the uncached build path gets exercised.
    """

    def __init__(self, off_diagonal: float) -> None:
        self.off_diagonal = off_diagonal

    def probability(self, distance: float) -> float:
        return 1.0 if distance == 0.0 else float(self.off_diagonal)

    def support(self) -> float:
        return 30.0


# ----------------------------------------------------------------------
# cache sharing and byte accounting
# ----------------------------------------------------------------------
class TestCacheSharing:
    def test_hit_returns_the_shared_entry(self):
        kernel = GaussianKernel(sigma=45.0)
        first = kernel_matrices(PERIOD, kernel)
        second = kernel_matrices(PERIOD, GaussianKernel(sigma=45.0))
        assert second is first
        assert kernel_matrix_cache_bytes() == first.nbytes

    def test_distinct_keys_accumulate_bytes(self):
        a = kernel_matrices(PERIOD, GaussianKernel(sigma=45.0))
        b = kernel_matrices(PERIOD, GaussianKernel(sigma=60.0))
        assert a is not b
        assert kernel_matrix_cache_bytes() == a.nbytes + b.nbytes

    def test_representation_is_part_of_the_key(self):
        kernel = GaussianKernel(sigma=45.0)
        banded = kernel_matrices(PERIOD, kernel, "banded")
        dense = kernel_matrices(PERIOD, kernel, "dense")
        assert banded is not dense
        assert banded.representation == "banded"
        assert dense.representation == "dense"
        assert kernel_matrix_cache_bytes() == banded.nbytes + dense.nbytes

    def test_uncacheable_kernel_builds_fresh_every_time(self):
        kernel = StubKernel(0.5)
        first = kernel_matrices(PERIOD, kernel)
        second = kernel_matrices(PERIOD, kernel)
        assert first is not second
        assert kernel_matrix_cache_bytes() == 0
        assert np.array_equal(first.weights, second.weights)

    def test_bytes_gauge_tracks_the_ledger(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            built = kernel_matrices(PERIOD, GaussianKernel(sigma=45.0))
            gauge = registry.gauge("sor_kernel_matrix_cache_bytes")
            assert gauge.value() == float(built.nbytes)
            clear_kernel_matrix_cache()
            assert gauge.value() == 0.0


# ----------------------------------------------------------------------
# eviction by bytes, not entry count
# ----------------------------------------------------------------------
class TestByteEviction:
    def test_over_cap_insert_evicts_least_recently_used(self, monkeypatch):
        k1 = GaussianKernel(sigma=45.0)
        k2 = GaussianKernel(sigma=60.0)
        # Size both entries first, then rerun under a cap that holds
        # exactly one of them.
        cap = max(
            kernel_matrices(PERIOD, k1).nbytes,
            kernel_matrices(PERIOD, k2).nbytes,
        )
        clear_kernel_matrix_cache()
        monkeypatch.setattr(objective_module, "_MATRIX_CACHE_MAX_BYTES", cap)
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = kernel_matrices(PERIOD, k1)
            second = kernel_matrices(PERIOD, k2)
            assert kernel_matrix_cache_bytes() == second.nbytes
            # k1 was evicted: a fresh build, and it in turn evicts k2.
            rebuilt = kernel_matrices(PERIOD, k1)
            assert rebuilt is not first
            assert kernel_matrices(PERIOD, k1) is rebuilt
            assert registry.counter(
                "sor_kernel_matrix_cache_evictions_total"
            ).value() == 2.0

    def test_oversized_entry_bypasses_the_cache(self, monkeypatch):
        monkeypatch.setattr(objective_module, "_MATRIX_CACHE_MAX_BYTES", 1)
        kernel = GaussianKernel(sigma=45.0)
        first = kernel_matrices(PERIOD, kernel)
        second = kernel_matrices(PERIOD, kernel)
        assert first is not second
        assert kernel_matrix_cache_bytes() == 0

    def test_objectives_still_correct_under_byte_pressure(self, monkeypatch):
        """Eviction changes residency, never the returned floats."""
        reference = kernel_matrices(PERIOD, GaussianKernel(sigma=45.0))
        clear_kernel_matrix_cache()
        monkeypatch.setattr(objective_module, "_MATRIX_CACHE_MAX_BYTES", 1)
        uncached = kernel_matrices(PERIOD, GaussianKernel(sigma=45.0))
        assert np.array_equal(uncached.weights, reference.weights)
        assert np.array_equal(
            uncached.complement_band, reference.complement_band
        )


# ----------------------------------------------------------------------
# the concurrency regression
# ----------------------------------------------------------------------
class TestConcurrentAccess:
    def test_hammering_threads_leave_a_consistent_ledger(self, monkeypatch):
        """Many threads, few slots: constant hit/miss/evict churn.

        Before the lock, this interleaving could lose entries
        mid-``move_to_end`` or double-count bytes; now the ledger must
        equal the sum of resident entries exactly, with every thread
        receiving structurally valid matrices.
        """
        kernels = [GaussianKernel(sigma=40.0 + i) for i in range(6)]
        probe = kernel_matrices(PERIOD, kernels[0])
        clear_kernel_matrix_cache()
        monkeypatch.setattr(
            objective_module,
            "_MATRIX_CACHE_MAX_BYTES",
            int(2.5 * probe.nbytes),
        )
        errors: list[BaseException] = []
        start = threading.Barrier(8)

        def hammer(worker: int) -> None:
            try:
                start.wait()
                for iteration in range(200):
                    kernel = kernels[(worker + iteration) % len(kernels)]
                    built = kernel_matrices(PERIOD, kernel)
                    assert built.window >= 1
                    assert (
                        built.complement_band.shape[0]
                        == 2 * built.window + 1
                    )
            except BaseException as exc:  # noqa: BLE001 - audit below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        with objective_module._MATRIX_CACHE_LOCK:
            resident = sum(
                entry.nbytes
                for entry in objective_module._MATRIX_CACHE.values()
            )
            assert objective_module._matrix_cache_bytes == resident
        assert kernel_matrix_cache_bytes() <= int(2.5 * probe.nbytes)

    def test_racing_builders_share_one_winner(self):
        """Concurrent misses for the same key converge on one entry."""
        kernel = GaussianKernel(sigma=45.0)
        results: list[object] = []
        start = threading.Barrier(8)

        def build() -> None:
            start.wait()
            results.append(kernel_matrices(PERIOD, kernel))

        threads = [threading.Thread(target=build) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cached = kernel_matrices(PERIOD, kernel)
        assert kernel_matrix_cache_bytes() == cached.nbytes
        for built in results:
            assert np.array_equal(built.weights, cached.weights)


# ----------------------------------------------------------------------
# kernel-weight validation: the log1p(-1.0) trap
# ----------------------------------------------------------------------
class TestKernelValidation:
    @pytest.mark.parametrize(
        "bad", [1.0, 1.5, -0.25, float("nan")], ids=["one", "big", "neg", "nan"]
    )
    def test_numpy_backend_rejects_bad_off_diagonal(self, bad):
        with pytest.raises(KernelValidationError) as excinfo:
            CoverageObjective(PERIOD, StubKernel(bad))
        message = str(excinfo.value)
        assert "StubKernel" in message
        assert "at distance" in message
        assert "[0, 1)" in message

    @pytest.mark.parametrize(
        "bad", [1.0, 1.5, -0.25, float("nan")], ids=["one", "big", "neg", "nan"]
    )
    def test_reference_backend_rejects_bad_off_diagonal(self, bad):
        with pytest.raises(KernelValidationError):
            ReferenceCoverageObjective(PERIOD, StubKernel(bad))

    def test_diagonal_probability_of_one_is_legal(self):
        """p(0) = 1 is the spec — the −inf on the diagonal is deliberate."""
        objective = CoverageObjective(PERIOD, StubKernel(0.999))
        reference = ReferenceCoverageObjective(PERIOD, StubKernel(0.999))
        assert objective.add(3) == reference.add(3)
        assert objective.value() == pytest.approx(reference.value(), rel=1e-9)

    def test_error_names_the_offending_distance(self):
        kernel = StubKernel(1.0)
        with pytest.raises(KernelValidationError, match="at distance 20s"):
            validate_kernel_weights([1.0, 0.5, 1.0], kernel, 10.0)

    def test_valid_kernels_pass(self):
        validate_kernel_weights(
            [1.0, 0.5, 0.0], GaussianKernel(sigma=45.0), 10.0
        )
        validate_kernel_weights(
            np.array([1.0, 0.999999]), TriangularKernel(width=90.0), 10.0
        )
