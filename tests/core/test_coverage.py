"""Tests for coverage kernels."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ValidationError
from repro.core.scheduling import ExponentialKernel, GaussianKernel, TriangularKernel

KERNELS = [GaussianKernel(10.0), TriangularKernel(25.0), ExponentialKernel(8.0)]


class TestKernelContract:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_probability_one_at_zero(self, kernel):
        assert kernel.probability(0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_non_increasing(self, kernel):
        distances = [0.0, 1.0, 5.0, 10.0, 50.0, 200.0]
        values = [kernel.probability(d) for d in distances]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_negligible_beyond_support(self, kernel):
        assert kernel.probability(kernel.support() * 1.01) < 1e-8

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_values_are_probabilities(self, kernel):
        for distance in (0.0, 0.5, 3.0, 42.0):
            assert 0.0 <= kernel.probability(distance) <= 1.0


class TestGaussian:
    def test_matches_formula(self):
        kernel = GaussianKernel(sigma=10.0)
        import math

        assert kernel.probability(10.0) == pytest.approx(math.exp(-0.5))

    def test_sigma_scales_width(self):
        narrow, wide = GaussianKernel(5.0), GaussianKernel(50.0)
        assert narrow.probability(20.0) < wide.probability(20.0)

    @given(sigma=st.floats(0.1, 1000), distance=st.floats(0, 10_000))
    def test_always_valid_probability(self, sigma, distance):
        assert 0.0 <= GaussianKernel(sigma).probability(distance) <= 1.0

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValidationError):
            GaussianKernel(0.0)


class TestTriangular:
    def test_exact_zero_beyond_width(self):
        assert TriangularKernel(10.0).probability(10.0) == 0.0
        assert TriangularKernel(10.0).probability(11.0) == 0.0

    def test_linear_midpoint(self):
        assert TriangularKernel(10.0).probability(5.0) == pytest.approx(0.5)
