"""Tests for scheduling problem data types."""

import pytest

from repro.common.errors import SchedulingError, ValidationError
from repro.core.scheduling import (
    GaussianKernel,
    MobileUser,
    Schedule,
    SchedulingPeriod,
    SchedulingProblem,
)


class TestSchedulingPeriod:
    def test_paper_setup(self):
        period = SchedulingPeriod(0.0, 10_800.0, 1080)
        assert period.spacing == pytest.approx(10.0)
        assert period.duration == 10_800.0

    def test_instants_array(self):
        period = SchedulingPeriod(100.0, 200.0, 10)
        instants = period.instants()
        assert len(instants) == 10
        assert instants[0] == 100.0
        assert instants[1] == pytest.approx(110.0)

    def test_instant_time_bounds(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        assert period.instant_time(0) == 0.0
        with pytest.raises(ValidationError):
            period.instant_time(10)
        with pytest.raises(ValidationError):
            period.instant_time(-1)

    def test_nearest_instant_clamps(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        assert period.nearest_instant(-50.0) == 0
        assert period.nearest_instant(1e9) == 9
        assert period.nearest_instant(42.0) == 4

    def test_window_indices(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        assert period.window_indices(0.0, 100.0) == (0, 10)
        assert period.window_indices(25.0, 55.0) == (3, 6)
        lo, hi = period.window_indices(99.0, 99.5)
        assert hi >= lo

    def test_invalid_period_rejected(self):
        with pytest.raises(ValidationError):
            SchedulingPeriod(10.0, 10.0, 5)
        with pytest.raises(ValidationError):
            SchedulingPeriod(0.0, 10.0, 0)


class TestMobileUser:
    def test_valid(self):
        user = MobileUser("u", 0.0, 10.0, 3)
        assert user.budget == 3

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            MobileUser("", 0.0, 10.0, 1)
        with pytest.raises(ValidationError):
            MobileUser("u", 10.0, 0.0, 1)
        with pytest.raises(ValidationError):
            MobileUser("u", 0.0, 10.0, -1)


class TestSchedulingProblem:
    def test_duplicate_users_rejected(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        with pytest.raises(ValidationError):
            SchedulingProblem(
                period,
                [MobileUser("u", 0, 50, 1), MobileUser("u", 50, 100, 1)],
            )

    def test_windows_and_ground_set(self, small_problem):
        lo, hi = small_problem.user_window(0)
        assert lo == 0
        assert small_problem.user_can_sense_at(0, lo)
        assert not small_problem.user_can_sense_at(0, 9)
        pairs = small_problem.ground_set()
        assert all(
            small_problem.user_can_sense_at(user, instant)
            for user, instant in pairs
        )

    def test_total_budget(self, small_problem):
        assert small_problem.total_budget() == 4

    def test_default_kernel_is_gaussian(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        problem = SchedulingProblem(period, [MobileUser("u", 0, 100, 1)])
        assert isinstance(problem.kernel, GaussianKernel)


class TestScheduleValidation:
    def test_valid_schedule_passes(self, small_problem):
        schedule = Schedule(
            problem=small_problem, assignments={"a": [0, 3], "b": [5]}
        )
        schedule.validate()

    def test_budget_violation_caught(self, small_problem):
        schedule = Schedule(
            problem=small_problem, assignments={"a": [0, 1, 2]}
        )
        with pytest.raises(SchedulingError, match="budget"):
            schedule.validate()

    def test_window_violation_caught(self, small_problem):
        schedule = Schedule(problem=small_problem, assignments={"a": [9]})
        with pytest.raises(SchedulingError, match="window"):
            schedule.validate()

    def test_duplicate_instants_caught(self, small_problem):
        schedule = Schedule(problem=small_problem, assignments={"a": [2, 2]})
        with pytest.raises(SchedulingError, match="duplicate"):
            schedule.validate()

    def test_unknown_user_caught(self, small_problem):
        schedule = Schedule(problem=small_problem, assignments={"ghost": [0]})
        with pytest.raises(SchedulingError, match="unknown"):
            schedule.validate()

    def test_pooled_instants_deduplicated(self, small_problem):
        schedule = Schedule(
            problem=small_problem, assignments={"a": [3, 5], "b": [5, 7]}
        )
        assert schedule.pooled_instants == [3, 5, 7]

    def test_times_for(self, small_problem):
        schedule = Schedule(problem=small_problem, assignments={"a": [0, 2]})
        assert schedule.times_for("a") == [0.0, 20.0]
        assert schedule.times_for("missing") == []
