"""Tests for the budget partition matroid (paper Theorem 1)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.core.scheduling import BudgetPartitionMatroid


def pair_matroid(capacities):
    """Ground elements are (part, index) pairs."""
    return BudgetPartitionMatroid(capacities, part_of=lambda element: element[0])


class TestBasics:
    def test_empty_set_independent(self):
        assert pair_matroid({"a": 1}).is_independent(set())

    def test_capacity_respected(self):
        matroid = pair_matroid({"a": 2})
        assert matroid.is_independent({("a", 1), ("a", 2)})
        assert not matroid.is_independent({("a", 1), ("a", 2), ("a", 3)})

    def test_unknown_part_dependent(self):
        assert not pair_matroid({"a": 1}).is_independent({("zzz", 1)})

    def test_duplicates_dependent(self):
        matroid = pair_matroid({"a": 3})
        assert not matroid.is_independent([("a", 1), ("a", 1)])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            pair_matroid({"a": -1})

    def test_constant_time_oracle_matches_full_check(self):
        matroid = pair_matroid({"a": 2, "b": 1})
        current = {("a", 1), ("b", 1)}
        counters = matroid.counters_for(current)
        for element in [("a", 2), ("b", 2), ("c", 1)]:
            assert matroid.can_extend(counters, element) == matroid.is_independent(
                current | {element}
            )

    def test_rank_upper_bound(self):
        assert pair_matroid({"a": 2, "b": 3}).rank_upper_bound() == 5


# Hypothesis strategy for small matroid instances.
capacity_maps = st.dictionaries(
    st.sampled_from("abc"), st.integers(0, 3), min_size=1, max_size=3
)


def all_elements(capacities):
    return [
        (part, index) for part in capacities for index in range(4)
    ]


@settings(max_examples=60)
@given(capacities=capacity_maps, seed=st.integers(0, 10_000))
def test_matroid_axioms(capacities, seed):
    """Hereditary property + exchange axiom on exhaustive small subsets."""
    import random

    matroid = pair_matroid(capacities)
    universe = all_elements(capacities)
    rnd = random.Random(seed)
    sample = rnd.sample(universe, min(len(universe), 6))

    independents = [
        frozenset(subset)
        for size in range(len(sample) + 1)
        for subset in itertools.combinations(sample, size)
        if matroid.is_independent(subset)
    ]
    # Axiom 1: empty set independent.
    assert frozenset() in independents
    # Axiom 2 (hereditary): subsets of independent sets are independent.
    for independent in independents:
        for element in independent:
            assert frozenset(independent - {element}) in independents
    # Axiom 3 (exchange): |X| > |Y| ⇒ ∃x ∈ X \ Y with Y + x independent.
    for bigger in independents:
        for smaller in independents:
            if len(bigger) > len(smaller):
                assert any(
                    matroid.is_independent(smaller | {element})
                    for element in bigger - smaller
                ), (bigger, smaller)
