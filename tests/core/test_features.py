"""Tests for feature extraction (Section IV-A / V definitions)."""

import math

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.geo import LatLon, offset_latlon
from repro.core.features import (
    AltitudeChangeExtractor,
    CurvatureExtractor,
    FeaturePipeline,
    FeatureSpec,
    GpsFix,
    MeanExtractor,
    ReadingBurst,
    RoughnessExtractor,
    build_feature_matrix,
)

ORIGIN = LatLon(43.05, -76.15)


def scalar_burst(t, values):
    return ReadingBurst.of(t, 1.0, values)


class TestReadingBurst:
    def test_valid(self):
        burst = ReadingBurst.of(10.0, 2.0, [1.0, 2.0], source="phone-1")
        assert burst.values == (1.0, 2.0)
        assert burst.source == "phone-1"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ReadingBurst.of(0.0, 1.0, [])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            ReadingBurst.of(0.0, -1.0, [1.0])


class TestMeanExtractor:
    def test_mean_across_bursts(self):
        bursts = [scalar_burst(0, [1.0, 3.0]), scalar_burst(10, [5.0])]
        assert MeanExtractor().extract(bursts) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            MeanExtractor().extract([])


class TestRoughnessExtractor:
    def make_accel_burst(self, t, amplitude, samples=64):
        values = []
        for index in range(samples):
            shake = amplitude * math.sin(2 * math.pi * index / 16)
            values.append((0.0, 0.0, 9.81 + shake))
        return ReadingBurst.of(t, 1.0, values)

    def test_flat_surface_near_zero(self):
        burst = self.make_accel_burst(0, amplitude=0.0)
        assert RoughnessExtractor().extract([burst]) == pytest.approx(0.0, abs=1e-9)

    def test_scales_with_shaking(self):
        smooth = self.make_accel_burst(0, amplitude=0.1)
        rough = self.make_accel_burst(0, amplitude=0.5)
        extractor = RoughnessExtractor()
        assert extractor.extract([rough]) > extractor.extract([smooth]) * 3

    def test_sinusoid_std_value(self):
        burst = self.make_accel_burst(0, amplitude=1.0)
        # std of sin over whole periods = 1/√2
        assert RoughnessExtractor().extract([burst]) == pytest.approx(
            1 / math.sqrt(2), rel=0.01
        )

    def test_gravity_offset_ignored(self):
        # Constant gravity has zero deviation regardless of magnitude.
        values = [(0.0, 0.0, 9.81)] * 10
        burst = ReadingBurst.of(0, 1.0, values)
        assert RoughnessExtractor().extract([burst]) == 0.0


class TestAltitudeChangeExtractor:
    def test_flat_trail_zero(self):
        bursts = [scalar_burst(t, [120.0, 120.0]) for t in range(5)]
        assert AltitudeChangeExtractor().extract(bursts) == pytest.approx(0.0)

    def test_hilly_trail_positive(self):
        bursts = [
            scalar_burst(0, [100.0]),
            scalar_burst(1, [150.0]),
            scalar_burst(2, [100.0]),
        ]
        assert AltitudeChangeExtractor().extract(bursts) == pytest.approx(
            np.std([100, 150, 100])
        )

    def test_accepts_gps_fixes(self):
        bursts = [
            ReadingBurst.of(0, 1.0, [GpsFix(43.0, -76.0, 100.0)]),
            ReadingBurst.of(1, 1.0, [GpsFix(43.0, -76.0, 140.0)]),
        ]
        assert AltitudeChangeExtractor().extract(bursts) == pytest.approx(20.0)

    def test_within_burst_noise_averaged(self):
        # Noise inside a burst is averaged away before the std.
        bursts = [
            scalar_burst(0, [100.0 + noise for noise in (-1, 1, -1, 1)]),
            scalar_burst(1, [100.0 + noise for noise in (1, -1, 1, -1)]),
        ]
        assert AltitudeChangeExtractor().extract(bursts) == pytest.approx(0.0)


def trace_bursts(points, *, per_burst=3, spacing_s=10.0):
    """Split a list of GpsFix points into bursts of `per_burst`."""
    bursts = []
    for start in range(0, len(points) - per_burst + 1, per_burst):
        chunk = points[start : start + per_burst]
        bursts.append(
            ReadingBurst.of(start * spacing_s, 5.0, chunk, source="walker")
        )
    return bursts


def circle_fixes(radius_m, count=120):
    fixes = []
    for index in range(count):
        angle = 2 * math.pi * index / count
        point = offset_latlon(
            ORIGIN, east_m=radius_m * math.cos(angle), north_m=radius_m * math.sin(angle)
        )
        fixes.append(GpsFix(point.latitude, point.longitude, 100.0))
    return fixes


def straight_fixes(count=60, step_m=15.0):
    fixes = []
    for index in range(count):
        point = offset_latlon(ORIGIN, east_m=index * step_m, north_m=0.0)
        fixes.append(GpsFix(point.latitude, point.longitude, 100.0))
    return fixes


class TestCurvatureExtractor:
    def extractor(self):
        return CurvatureExtractor(min_spacing_m=10.0, max_gap_m=100.0, smooth_window=1)

    def test_straight_line_zero(self):
        bursts = trace_bursts(straight_fixes())
        assert self.extractor().extract(bursts) == pytest.approx(0.0, abs=1e-6)

    def test_circle_matches_inverse_radius(self):
        radius = 300.0
        bursts = trace_bursts(circle_fixes(radius))
        curvature_per_km = self.extractor().extract(bursts)
        assert curvature_per_km == pytest.approx(1000.0 / radius, rel=0.05)

    def test_tighter_circle_higher_curvature(self):
        wide = self.extractor().extract(trace_bursts(circle_fixes(400.0)))
        tight = self.extractor().extract(trace_bursts(circle_fixes(150.0)))
        assert tight > wide * 2

    def test_sources_not_mixed(self):
        """Two walkers far apart must not create phantom curvature."""
        a = trace_bursts(straight_fixes())
        offset_origin = offset_latlon(ORIGIN, east_m=0.0, north_m=5000.0)
        b_points = [
            GpsFix(
                offset_latlon(offset_origin, east_m=i * 15.0, north_m=0.0).latitude,
                offset_latlon(offset_origin, east_m=i * 15.0, north_m=0.0).longitude,
                100.0,
            )
            for i in range(60)
        ]
        b = [
            ReadingBurst.of(burst.timestamp, 5.0, burst.values, source="other")
            for burst in trace_bursts(b_points)
        ]
        assert self.extractor().extract(a + b) == pytest.approx(0.0, abs=1e-6)

    def test_non_gps_values_rejected(self):
        with pytest.raises(ValidationError):
            self.extractor().extract([scalar_burst(0, [1.0, 2.0, 3.0])])

    def test_too_few_points_zero(self):
        bursts = [ReadingBurst.of(0, 1.0, [GpsFix(43.0, -76.0, 0.0)])]
        assert self.extractor().extract(bursts) == 0.0

    def test_smoothing_reduces_gps_noise_curvature(self):
        rng = np.random.default_rng(0)
        noisy = []
        for fix in straight_fixes(count=90, step_m=12.0):
            moved = offset_latlon(
                LatLon(fix.latitude, fix.longitude),
                east_m=float(rng.normal(0, 2.0)),
                north_m=float(rng.normal(0, 2.0)),
            )
            noisy.append(GpsFix(moved.latitude, moved.longitude, 100.0))
        bursts = trace_bursts(noisy)
        raw = CurvatureExtractor(
            min_spacing_m=10.0, max_gap_m=100.0, smooth_window=1
        ).extract(bursts)
        smoothed = CurvatureExtractor(
            min_spacing_m=10.0, max_gap_m=100.0, smooth_window=5
        ).extract(bursts)
        assert smoothed < raw

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            CurvatureExtractor(min_spacing_m=0.0)
        with pytest.raises(ValidationError):
            CurvatureExtractor(min_spacing_m=10.0, max_gap_m=5.0)
        with pytest.raises(ValidationError):
            CurvatureExtractor(smooth_window=0)


class TestFeaturePipeline:
    def make_pipeline(self):
        return FeaturePipeline(
            [
                FeatureSpec("temperature", "temperature", MeanExtractor()),
                FeatureSpec("roughness", "accelerometer", RoughnessExtractor()),
            ]
        )

    def test_compute(self):
        pipeline = self.make_pipeline()
        bursts = {
            "temperature": [scalar_burst(0, [70.0, 72.0])],
            "accelerometer": [
                ReadingBurst.of(0, 1.0, [(0.0, 0.0, 9.81)] * 4)
            ],
        }
        values = pipeline.compute(bursts)
        assert values["temperature"] == pytest.approx(71.0)
        assert values["roughness"] == pytest.approx(0.0)

    def test_missing_sensor_rejected(self):
        with pytest.raises(ValidationError, match="accelerometer"):
            self.make_pipeline().compute({"temperature": [scalar_burst(0, [1.0])]})

    def test_duplicate_feature_names_rejected(self):
        with pytest.raises(ValidationError):
            FeaturePipeline(
                [
                    FeatureSpec("x", "a", MeanExtractor()),
                    FeatureSpec("x", "b", MeanExtractor()),
                ]
            )

    def test_required_sensors(self):
        assert self.make_pipeline().required_sensors == {
            "temperature",
            "accelerometer",
        }


class TestFeatureMatrix:
    def test_build(self):
        values = {
            "p1": {"a": 1.0, "b": 2.0},
            "p2": {"a": 3.0, "b": 4.0},
        }
        matrix, place_ids = build_feature_matrix(values, ["b", "a"])
        assert place_ids == ["p1", "p2"]
        np.testing.assert_allclose(matrix, [[2.0, 1.0], [4.0, 3.0]])

    def test_missing_feature_rejected(self):
        with pytest.raises(ValidationError):
            build_feature_matrix({"p": {"a": 1.0}}, ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            build_feature_matrix({}, ["a"])
