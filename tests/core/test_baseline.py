"""Tests for the periodic baseline scheduler (Section V-C)."""

import pytest

from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    PeriodicBaselineScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)


def make_problem(users, num_instants=1080, duration=10_800.0):
    period = SchedulingPeriod(0.0, duration, num_instants)
    return SchedulingProblem(period, users, GaussianKernel(sigma=10.0))


class TestBaseline:
    def test_senses_every_interval_from_arrival(self):
        problem = make_problem([MobileUser("u", 100.0, 10_800.0, 5)])
        schedule = PeriodicBaselineScheduler(interval_s=10.0).solve(problem)
        times = schedule.times_for("u")
        assert times == [100.0, 110.0, 120.0, 130.0, 140.0]

    def test_respects_budget(self):
        problem = make_problem([MobileUser("u", 0.0, 10_800.0, 17)])
        schedule = PeriodicBaselineScheduler().solve(problem)
        assert len(schedule.assignments["u"]) == 17

    def test_clips_at_departure(self):
        problem = make_problem([MobileUser("u", 0.0, 25.0, 100)])
        schedule = PeriodicBaselineScheduler(interval_s=10.0).solve(problem)
        assert all(t <= 25.0 for t in schedule.times_for("u"))

    def test_schedule_validates(self):
        users = [MobileUser(f"u{i}", i * 500.0, 10_800.0, 17) for i in range(5)]
        schedule = PeriodicBaselineScheduler().solve(make_problem(users))
        schedule.validate()

    def test_clusters_measurements_near_arrival(self):
        problem = make_problem([MobileUser("u", 0.0, 10_800.0, 17)])
        schedule = PeriodicBaselineScheduler().solve(problem)
        assert max(schedule.times_for("u")) <= 170.0

    def test_greedy_beats_baseline(self):
        """The paper's headline comparison, single instance."""
        users = [
            MobileUser(f"u{i}", i * 250.0, 10_800.0, 17) for i in range(20)
        ]
        problem = make_problem(users)
        greedy = GreedyScheduler().solve(problem)
        baseline = PeriodicBaselineScheduler().solve(problem)
        assert greedy.average_coverage > baseline.average_coverage * 1.3

    def test_invalid_interval_rejected(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            PeriodicBaselineScheduler(interval_s=0.0)
