"""Differential tests pinning the ranking aggregation to scipy.

The footrule aggregation is a min-cost perfect matching solved by our
successive-shortest-paths flow solver; scipy's
``linear_sum_assignment`` (Jonker–Volgenant) solves the same assignment
problem by a completely different algorithm, which makes it an ideal
cross-implementation oracle:

* on random cost matrices, the flow solver's total cost must equal the
  scipy optimum,
* on random ranking collections, the aggregate produced by
  :func:`aggregate_footrule` must *achieve* the scipy-optimal footrule
  cost (not just approximate it — the constraint matrix is totally
  unimodular, so the LP optimum is integral and attained),
* the footrule aggregate's weighted Kemeny distance stays within the
  theoretical 2× of the exact (brute-force) Kemeny optimum on ≤6
  places.

Run with ``--hypothesis-seed=0`` in CI for reproducibility.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.ranking import (
    Ranking,
    aggregate_footrule,
    brute_force_kemeny,
    weighted_kemeny_distance,
)
from repro.core.ranking.aggregate import (
    footrule_cost_matrix,
    footrule_cost_matrix_reference,
)
from repro.core.ranking.distances import weighted_footrule_distance
from repro.core.ranking.mincostflow import MinCostFlow


def _flow_assignment_cost(cost: np.ndarray) -> float:
    """Total cost of a min-cost perfect matching via our flow solver.

    Same graph shape as :func:`aggregate_footrule`: source → rows →
    columns → sink, all capacities 1.
    """
    count = cost.shape[0]
    network = MinCostFlow(2 * count + 2)
    source, sink = 0, 2 * count + 1
    for row in range(count):
        network.add_edge(source, 1 + row, 1, 0.0)
        for column in range(count):
            network.add_edge(1 + row, 1 + count + column, 1, float(cost[row, column]))
    for column in range(count):
        network.add_edge(1 + count + column, sink, 1, 0.0)
    return network.solve(source, sink, count)


def cost_matrices(max_size: int = 7):
    @st.composite
    def build(draw):
        size = draw(st.integers(min_value=1, max_value=max_size))
        values = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=size * size,
                max_size=size * size,
            )
        )
        return np.array(values).reshape(size, size)

    return build()


def ranking_collections(max_items: int = 6, max_rankings: int = 5):
    @st.composite
    def build(draw):
        num_items = draw(st.integers(min_value=1, max_value=max_items))
        num_rankings = draw(st.integers(min_value=1, max_value=max_rankings))
        items = [f"place-{index}" for index in range(num_items)]
        collection = []
        for _ in range(num_rankings):
            order = draw(st.permutations(items))
            collection.append(Ranking(order))
        weights = draw(
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=num_rankings,
                max_size=num_rankings,
            )
        )
        return collection, [float(weight) for weight in weights]

    return build()


def weighted_ranking_collections(max_items: int = 6, max_rankings: int = 5):
    """Like :func:`ranking_collections` but with irrational-ish float
    weights, so any accumulation-order difference between the vectorized
    cost matrix and the scalar reference would actually show up."""

    @st.composite
    def build(draw):
        collection, _ = draw(ranking_collections(max_items, max_rankings))
        weights = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False,
                          allow_infinity=False),
                min_size=len(collection),
                max_size=len(collection),
            )
        )
        return collection, weights

    return build()


class TestVectorizedCostMatrixBitwise:
    """The vectorized footrule cost matrix is pinned *bitwise* to the
    scalar reference loop — same contract as the scheduling backends."""

    @given(case=weighted_ranking_collections())
    @settings(max_examples=80, deadline=None)
    def test_vectorized_equals_reference_bitwise(self, case):
        collection, weights = case
        vectorized, items_v = footrule_cost_matrix(collection, weights)
        reference, items_r = footrule_cost_matrix_reference(collection, weights)
        assert items_v == items_r
        assert np.array_equal(vectorized, reference)  # bitwise, not approx

    def test_known_small_instance(self):
        collection = [Ranking(["a", "b", "c"]), Ranking(["c", "a", "b"])]
        weights = [0.3, 0.7]
        vectorized, items = footrule_cost_matrix(collection, weights)
        reference, _ = footrule_cost_matrix_reference(collection, weights)
        assert items == ("a", "b", "c")
        assert np.array_equal(vectorized, reference)
        # Spot-check one entry by hand: item "a" at rank 1 costs
        # 0.3·|1−1| + 0.7·|2−1| = 0.7.
        assert vectorized[0, 0] == pytest.approx(0.7)


class TestFlowMatchesScipy:
    @given(cost=cost_matrices())
    @settings(max_examples=60, deadline=None)
    def test_min_cost_matching_equals_linear_sum_assignment(self, cost):
        rows, columns = linear_sum_assignment(cost)
        scipy_cost = float(cost[rows, columns].sum())
        assert _flow_assignment_cost(cost) == pytest.approx(
            scipy_cost, rel=1e-9, abs=1e-9
        )

    @given(case=ranking_collections())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_achieves_scipy_optimal_footrule_cost(self, case):
        collection, weights = case
        cost, _ = footrule_cost_matrix(collection, weights)
        rows, columns = linear_sum_assignment(cost)
        optimum = float(cost[rows, columns].sum())
        aggregate = aggregate_footrule(collection, weights)
        achieved = weighted_footrule_distance(aggregate, collection, weights)
        assert achieved == pytest.approx(optimum, rel=1e-9, abs=1e-9)


class TestKemenyGuarantee:
    @given(case=ranking_collections(max_items=6, max_rankings=4))
    @settings(max_examples=25, deadline=None)
    def test_footrule_within_twice_brute_force_kemeny(self, case):
        collection, weights = case
        optimum = brute_force_kemeny(collection, weights)
        optimum_value = weighted_kemeny_distance(optimum, collection, weights)
        aggregate = aggregate_footrule(collection, weights)
        achieved = weighted_kemeny_distance(aggregate, collection, weights)
        assert achieved <= 2.0 * optimum_value + 1e-9
