"""Property tests for the stochastic greedy mode.

The stochastic mode trades the exact modes' bitwise pick discipline for
horizon-free per-pick cost, and promises exactly two things instead:

* **determinism under a fixed seed, within a backend** — a scheduler
  re-solved with the same seed reproduces its schedule bit for bit.
  (Cross-backend identity is explicitly *not* promised: the numpy path
  scores sampled candidates with a BLAS-order dot that rounds a few ulp
  away from the reference's fold-tree walk, so these tests never
  compare stochastic schedules across backends.)
* **value within ε of exact greedy** — the sampled pick keeps the
  ``(1 − 1/e − ε)`` expectation bound (Mirzasoleiman et al. 2015), and
  in practice lands within a percent or two of the exact value.

Plus the invariants every mode owes: budgets are never exceeded,
schedules validate, ``min_gain`` terminates the loop, and a dry sample
falls back to one exact sweep rather than stalling.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SchedulingError
from repro.core.scheduling import (
    FeatureKernel,
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    MultiKernelGreedyScheduler,
    PerUserGreedyScheduler,
    SchedulingPeriod,
    SchedulingProblem,
    TriangularKernel,
    stochastic_sample_size,
)
from repro.obs import MetricsRegistry

PERIOD_S = 600.0


def problems(max_instants: int = 48, max_users: int = 5, max_budget: int = 6):
    """Random scheduling problems (mirrors the differential suite)."""

    @st.composite
    def build(draw):
        num_instants = draw(st.integers(min_value=2, max_value=max_instants))
        sigma = draw(
            st.floats(min_value=1.0, max_value=120.0, allow_nan=False)
        )
        num_users = draw(st.integers(min_value=1, max_value=max_users))
        period = SchedulingPeriod(0.0, PERIOD_S, num_instants)
        users = []
        for index in range(num_users):
            arrival = draw(
                st.floats(min_value=0.0, max_value=PERIOD_S * 0.9)
            )
            departure = draw(
                st.floats(min_value=arrival, max_value=PERIOD_S)
            )
            budget = draw(st.integers(min_value=1, max_value=max_budget))
            users.append(
                MobileUser(
                    user_id=f"u{index}",
                    arrival=arrival,
                    departure=departure,
                    budget=budget,
                )
            )
        return SchedulingProblem(period, users, GaussianKernel(sigma=sigma))

    return build()


def wide_open_problem(num_instants=40, num_users=3, budget=4, sigma=30.0):
    """Every user present for the whole period."""
    period = SchedulingPeriod(0.0, PERIOD_S, num_instants)
    users = [
        MobileUser(
            user_id=f"u{index}", arrival=0.0, departure=PERIOD_S, budget=budget
        )
        for index in range(num_users)
    ]
    return SchedulingProblem(period, users, GaussianKernel(sigma=sigma))


class _ZeroRng:
    """Generator stub whose every draw is candidate index 0.

    Starves the sampler: once instant 0 stops paying, every sample is
    dry, forcing the exact-sweep fallback on each remaining pick.
    """

    def integers(self, low, high, size=None):
        return np.zeros(size, dtype=np.int64)


# ----------------------------------------------------------------------
# sample-size formula
# ----------------------------------------------------------------------
class TestSampleSize:
    def test_matches_the_formula(self):
        # ⌈(1000/10)·ln(1/0.1)⌉ = ⌈230.26⌉ = 231
        assert stochastic_sample_size(1000, 10, 0.1) == 231

    def test_clamps_to_at_least_one(self):
        assert stochastic_sample_size(5, 1000, 0.5) == 1

    def test_clamps_to_candidate_count(self):
        assert stochastic_sample_size(4, 1, 0.1) == 4

    def test_degenerate_inputs(self):
        assert stochastic_sample_size(0, 10, 0.1) == 0
        assert stochastic_sample_size(10, 0, 0.1) == 10

    def test_smaller_epsilon_never_shrinks_the_sample(self):
        loose = stochastic_sample_size(500, 10, 0.3)
        tight = stochastic_sample_size(500, 10, 0.05)
        assert tight >= loose


# ----------------------------------------------------------------------
# determinism under a fixed seed (within a backend)
# ----------------------------------------------------------------------
class TestSeedDeterminism:
    @pytest.mark.parametrize("backend", ["numpy", "reference"])
    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_fresh_schedulers_with_equal_seeds_agree_bitwise(
        self, backend, problem
    ):
        first = GreedyScheduler(mode="stochastic", backend=backend, seed=7)
        second = GreedyScheduler(mode="stochastic", backend=backend, seed=7)
        a = first.solve(problem)
        b = second.solve(problem)
        assert a.assignments == b.assignments
        assert a.objective_value == b.objective_value

    @given(problem=problems())
    @settings(max_examples=15, deadline=None)
    def test_resolving_the_same_scheduler_is_deterministic(self, problem):
        scheduler = GreedyScheduler(mode="stochastic", seed=11)
        a = scheduler.solve(problem)
        b = scheduler.solve(problem)
        assert a.assignments == b.assignments
        assert a.objective_value == b.objective_value

    def test_injected_rng_advances_across_solves(self):
        """An injected generator is the caller's stream to manage."""
        problem = wide_open_problem()
        seeded = GreedyScheduler(
            mode="stochastic", rng=np.random.default_rng(7)
        )
        first = seeded.solve(problem)
        seeded.solve(problem)  # advances the injected stream
        replay = GreedyScheduler(
            mode="stochastic", rng=np.random.default_rng(7)
        )
        assert replay.solve(problem).assignments == first.assignments

    def test_bad_sample_epsilon_rejected(self):
        with pytest.raises(SchedulingError):
            GreedyScheduler(mode="stochastic", sample_epsilon=0.0)
        with pytest.raises(SchedulingError):
            GreedyScheduler(mode="stochastic", sample_epsilon=1.0)


# ----------------------------------------------------------------------
# value and feasibility guarantees
# ----------------------------------------------------------------------
class TestGuarantees:
    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_value_within_epsilon_of_exact_greedy(self, problem):
        epsilon = 0.1
        exact = GreedyScheduler(mode="lazy").solve(problem)
        sampled = GreedyScheduler(
            mode="stochastic", sample_epsilon=epsilon, seed=7
        ).solve(problem)
        bound = (1.0 - 1.0 / math.e - epsilon) * exact.objective_value
        assert sampled.objective_value >= bound - 1e-9

    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_budgets_never_exceeded_and_schedule_validates(self, problem):
        schedule = GreedyScheduler(mode="stochastic", seed=7).solve(problem)
        schedule.validate()
        for user in problem.users:
            assigned = schedule.assignments.get(user.user_id, [])
            assert len(assigned) <= user.budget
            assert len(set(assigned)) == len(assigned)

    def test_min_gain_terminates_the_loop(self):
        problem = wide_open_problem()
        starved = GreedyScheduler(
            mode="stochastic", seed=7, min_gain=float("inf")
        ).solve(problem)
        assert starved.pooled_instants == []
        assert starved.objective_value == 0.0

    def test_matroid_runs_to_a_basis_with_zero_min_gain(self):
        problem = wide_open_problem(num_instants=40, num_users=2, budget=3)
        schedule = GreedyScheduler(
            mode="stochastic", seed=7, min_gain=0.0
        ).solve(problem)
        for user in problem.users:
            assert len(schedule.assignments[user.user_id]) == user.budget


# ----------------------------------------------------------------------
# dry-sample fallback and instrumentation
# ----------------------------------------------------------------------
class TestFallbackAndMetrics:
    def test_solve_reports_sample_and_evaluation_counters(self):
        registry = MetricsRegistry()
        scheduler = GreedyScheduler(
            mode="stochastic", seed=7, metrics=registry
        )
        scheduler.solve(wide_open_problem())
        assert (
            registry.counter("sor_greedy_stochastic_samples_total").value()
            > 0
        )
        assert (
            registry.counter(
                "sor_greedy_evaluations_total", labels=("strategy",)
            ).value(strategy="stochastic")
            > 0
        )

    def test_dry_sample_falls_back_to_an_exact_sweep(self):
        """A starved sampler must still fill the matroid, exactly.

        The stub rng only ever proposes instant 0; after it is taken the
        samples are all dry, so every further pick must come from the
        exact fallback sweep — the schedule still fills every budget
        with distinct, well-spread instants.
        """
        problem = wide_open_problem(num_instants=30, num_users=2, budget=1)
        registry = MetricsRegistry()
        scheduler = GreedyScheduler(
            mode="stochastic", rng=_ZeroRng(), metrics=registry
        )
        schedule = scheduler.solve(problem)
        schedule.validate()
        pooled = schedule.pooled_instants
        assert len(pooled) == 2
        assert len(set(pooled)) == 2
        assert (
            registry.counter(
                "sor_greedy_stochastic_fallbacks_total"
            ).value()
            >= 1
        )


# ----------------------------------------------------------------------
# stochastic mode through the composite schedulers and the server path
# ----------------------------------------------------------------------
class TestCompositeSchedulers:
    def test_per_user_stochastic_is_deterministic_and_feasible(self):
        problem = wide_open_problem(num_instants=40, num_users=3, budget=4)
        first = PerUserGreedyScheduler(mode="stochastic", seed=7).solve(
            problem
        )
        second = PerUserGreedyScheduler(mode="stochastic", seed=7).solve(
            problem
        )
        assert first.assignments == second.assignments
        first.validate()
        for user in problem.users:
            assert len(first.assignments[user.user_id]) <= user.budget

    def test_multikernel_stochastic_is_deterministic_and_feasible(self):
        features = [
            FeatureKernel("noise", GaussianKernel(sigma=45.0), weight=1.0),
            FeatureKernel(
                "occupancy", TriangularKernel(width=90.0), weight=0.5
            ),
        ]
        problem = wide_open_problem(num_instants=40, num_users=3, budget=3)
        first = MultiKernelGreedyScheduler(
            features, mode="stochastic", seed=7
        ).solve(problem)
        second = MultiKernelGreedyScheduler(
            features, mode="stochastic", seed=7
        ).solve(problem)
        assert first.assignments == second.assignments
        first.validate()

    def test_scheduler_service_rejects_unknown_mode(self):
        from repro.server.scheduler_service import SensingSchedulerService

        with pytest.raises(SchedulingError):
            SensingSchedulerService(None, None, mode="sampled")

    def test_app_scheduler_state_stochastic_is_deterministic(self):
        from repro.server.app_manager import Application
        from repro.server.scheduler_service import _AppSchedulerState
        from repro.common.geo import LatLon

        def make_state():
            application = Application(
                app_id="app-1",
                creator="owner",
                place_id="place-1",
                place_name="Place One",
                category="coffee_shop",
                location=LatLon(43.05, -76.15),
                script="return get_temperature_readings(3, 1.0)",
                pipeline=None,
                period_start=0.0,
                period_end=10_800.0,
                num_instants=360,
            )
            return _AppSchedulerState(
                application, mode="stochastic", seed=7
            )

        a, b = make_state(), make_state()
        for user in ("u0", "u1", "u2"):
            chosen_a, _ = a.schedule_user(
                user, from_time=0.0, until_time=10_800.0, budget=5
            )
            chosen_b, _ = b.schedule_user(
                user, from_time=0.0, until_time=10_800.0, budget=5
            )
            assert chosen_a == chosen_b
            assert len(chosen_a) <= 5
            assert len(set(chosen_a)) == len(chosen_a)
