"""Tests for rank aggregation (Algorithm 2, step 3)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import RankingError
from repro.core.ranking import (
    Ranking,
    aggregate_footrule,
    borda_count,
    brute_force_kemeny,
    footrule_cost_matrix,
    refine_by_adjacent_swaps,
    weighted_footrule_distance,
    weighted_kemeny_distance,
)

ITEMS = tuple("ABCDE")


def random_instance(rng, *, num_rankings=3, items=ITEMS):
    collection = [
        Ranking(rng.permutation(list(items)).tolist()) for _ in range(num_rankings)
    ]
    weights = [int(w) for w in rng.integers(0, 6, size=num_rankings)]
    if sum(weights) == 0:
        weights[0] = 1
    return collection, weights


class TestCostMatrix:
    def test_shape_and_items(self):
        collection = [Ranking("ABC"), Ranking("CBA")]
        cost, items = footrule_cost_matrix(collection, [1, 1])
        assert cost.shape == (3, 3)
        assert items == ("A", "B", "C")

    def test_values(self):
        collection = [Ranking("AB")]
        cost, _ = footrule_cost_matrix(collection, [2])
        # A at rank1: |1-1|*2 = 0; A at rank2: |1-2|*2 = 2
        assert cost[0, 0] == 0.0
        assert cost[0, 1] == 2.0


class TestFootruleOptimality:
    def test_unanimous_input_returned(self):
        collection = [Ranking("CAB")] * 3
        assert aggregate_footrule(collection, [1, 2, 3]) == Ranking("CAB")

    def test_zero_weight_ranking_ignored(self):
        collection = [Ranking("ABC"), Ranking("CBA")]
        assert aggregate_footrule(collection, [1, 0]) == Ranking("ABC")

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_exactly_minimizes_weighted_footrule(self, seed):
        rng = np.random.default_rng(seed)
        collection, weights = random_instance(rng)
        aggregated = aggregate_footrule(collection, weights)
        best = min(
            weighted_footrule_distance(Ranking(p), collection, weights)
            for p in itertools.permutations(ITEMS)
        )
        achieved = weighted_footrule_distance(aggregated, collection, weights)
        assert achieved == pytest.approx(best)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_two_approximation_of_kemeny(self, seed):
        """The paper's guarantee via d_K ≤ d_f ≤ 2·d_K."""
        rng = np.random.default_rng(seed)
        collection, weights = random_instance(rng)
        aggregated = aggregate_footrule(collection, weights)
        optimum = brute_force_kemeny(collection, weights)
        optimal_value = weighted_kemeny_distance(optimum, collection, weights)
        achieved = weighted_kemeny_distance(aggregated, collection, weights)
        assert achieved <= 2.0 * optimal_value + 1e-9


class TestBruteForceKemeny:
    def test_single_ranking_is_its_own_optimum(self):
        assert brute_force_kemeny([Ranking("BAC")], [5]) == Ranking("BAC")

    def test_majority_wins(self):
        collection = [Ranking("ABC"), Ranking("ABC"), Ranking("CBA")]
        assert brute_force_kemeny(collection, [1, 1, 1]) == Ranking("ABC")

    def test_weights_can_flip_majority(self):
        collection = [Ranking("ABC"), Ranking("ABC"), Ranking("CBA")]
        assert brute_force_kemeny(collection, [1, 1, 10]) == Ranking("CBA")

    def test_size_limit_enforced(self):
        big = Ranking(range(12))
        with pytest.raises(RankingError):
            brute_force_kemeny([big], [1])


class TestBordaAndRefinement:
    def test_borda_simple(self):
        collection = [Ranking("ABC"), Ranking("ACB")]
        assert borda_count(collection, [1, 1]) == Ranking("ABC")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_refinement_never_hurts(self, seed):
        rng = np.random.default_rng(seed)
        collection, weights = random_instance(rng)
        start = borda_count(collection, weights)
        refined = refine_by_adjacent_swaps(start, collection, weights)
        assert weighted_kemeny_distance(
            refined, collection, weights
        ) <= weighted_kemeny_distance(start, collection, weights)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_flow_plus_refinement_close_to_optimal(self, seed):
        rng = np.random.default_rng(seed)
        collection, weights = random_instance(rng, num_rankings=4)
        refined = refine_by_adjacent_swaps(
            aggregate_footrule(collection, weights), collection, weights
        )
        optimum = brute_force_kemeny(collection, weights)
        achieved = weighted_kemeny_distance(refined, collection, weights)
        optimal_value = weighted_kemeny_distance(optimum, collection, weights)
        # Local Kemenization of the footrule solution is near-optimal in
        # practice; 1.5 is a loose regression bound (theory says ≤ 2).
        assert achieved <= 1.5 * optimal_value + 1e-9


class TestInputValidation:
    def test_empty_collection_rejected(self):
        with pytest.raises(RankingError):
            aggregate_footrule([], [])

    def test_mismatched_item_sets_rejected(self):
        with pytest.raises(RankingError):
            aggregate_footrule([Ranking("AB"), Ranking("AC")], [1, 1])
