"""Tests for the incremental coverage objective."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduling import CoverageObjective, GaussianKernel, SchedulingPeriod
from repro.core.scheduling.objective import coverage_of_instants


def make_objective(num_instants=20, sigma=15.0, duration=200.0):
    period = SchedulingPeriod(0.0, duration, num_instants)
    return CoverageObjective(period, GaussianKernel(sigma=sigma))


def brute_force_value(period, kernel, chosen):
    """Direct evaluation of equations (1) and (4)."""
    total = 0.0
    for j in range(period.num_instants):
        survival = 1.0
        for i in chosen:
            distance = abs(period.instant_time(i) - period.instant_time(j))
            survival *= 1.0 - kernel.probability(distance)
        total += 1.0 - survival
    return total


class TestValue:
    def test_empty_value_zero(self):
        assert make_objective().value() == 0.0

    def test_single_instant_matches_brute_force(self):
        objective = make_objective()
        objective.add(10)
        expected = brute_force_value(
            objective.period, objective.kernel, {10}
        )
        assert objective.value() == pytest.approx(expected, rel=1e-9)

    def test_multiple_instants_match_brute_force(self):
        objective = make_objective()
        for instant in (2, 7, 13, 18):
            objective.add(instant)
        expected = brute_force_value(
            objective.period, objective.kernel, {2, 7, 13, 18}
        )
        assert objective.value() == pytest.approx(expected, rel=1e-9)

    def test_duplicate_add_is_noop(self):
        objective = make_objective()
        objective.add(5)
        before = objective.value()
        assert objective.add(5) == 0.0
        assert objective.value() == before

    def test_average_coverage_normalization(self):
        objective = make_objective()
        objective.add(10)
        assert objective.average_coverage() == pytest.approx(
            objective.value() / 20
        )

    def test_coverage_profile_peaks_at_measurement(self):
        objective = make_objective()
        objective.add(10)
        profile = objective.coverage_profile()
        assert profile[10] == pytest.approx(1.0)
        assert profile[10] >= profile.max() - 1e-12

    def test_out_of_range_add_rejected(self):
        from repro.common.errors import SchedulingError

        with pytest.raises(SchedulingError):
            make_objective().add(99)


class TestGains:
    def test_gain_equals_realized_increase(self):
        objective = make_objective()
        objective.add(4)
        predicted = objective.gain(12)
        before = objective.value()
        objective.add(12)
        assert objective.value() - before == pytest.approx(predicted, rel=1e-9)

    def test_gains_all_matches_individual(self):
        objective = make_objective()
        objective.add(7)
        gains = objective.gains_all()
        for instant in range(20):
            assert gains[instant] == objective.gain(instant)

    def test_gains_fast_matches_gains_all(self):
        objective = make_objective()
        for instant in (1, 9, 15):
            objective.add(instant)
        np.testing.assert_allclose(
            objective.gains_fast(), objective.gains_all(), atol=1e-12
        )

    def test_chosen_instant_gain_zero(self):
        objective = make_objective()
        objective.add(5)
        assert objective.gain(5) == 0.0


class TestSubmodularityProperties:
    @settings(max_examples=40)
    @given(
        base=st.sets(st.integers(0, 19), max_size=6),
        extra=st.integers(0, 19),
        candidate=st.integers(0, 19),
    )
    def test_monotone_and_submodular(self, base, extra, candidate):
        """f is monotone; marginal gains shrink as the set grows."""
        small = make_objective()
        for instant in base:
            small.add(instant)
        big = make_objective()
        for instant in base | {extra}:
            big.add(instant)
        # Monotonicity.
        assert big.value() >= small.value() - 1e-12
        # Submodularity (diminishing returns).
        assert big.gain(candidate) <= small.gain(candidate) + 1e-12

    @settings(max_examples=30)
    @given(chosen=st.sets(st.integers(0, 19), max_size=8))
    def test_incremental_matches_brute_force(self, chosen):
        objective = make_objective()
        for instant in chosen:
            objective.add(instant)
        expected = brute_force_value(objective.period, objective.kernel, chosen)
        assert objective.value() == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_value_bounded_by_num_instants(self):
        objective = make_objective()
        for instant in range(20):
            objective.add(instant)
        assert objective.value() <= 20.0 + 1e-9


class TestHelpers:
    def test_coverage_of_instants_one_shot(self):
        period = SchedulingPeriod(0.0, 200.0, 20)
        kernel = GaussianKernel(15.0)
        value = coverage_of_instants(period, kernel, [3, 9, 9, 16])
        assert value == pytest.approx(
            brute_force_value(period, kernel, {3, 9, 16}), rel=1e-9
        )

    def test_window_respects_kernel_support(self):
        objective = make_objective(num_instants=100, sigma=5.0, duration=1000.0)
        support_instants = math.ceil(
            objective.kernel.support() / objective.period.spacing
        )
        assert objective.window == support_instants
