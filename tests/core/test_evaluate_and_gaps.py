"""Tests for evaluation helpers and miscellaneous gaps."""

import numpy as np
import pytest

from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    Schedule,
    SchedulingPeriod,
    average_coverage,
    evaluate_instants,
)


class TestEvaluateInstants:
    def test_empty_set_zero(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        assert evaluate_instants(period, GaussianKernel(10.0), []) == 0.0

    def test_duplicates_ignored(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        kernel = GaussianKernel(10.0)
        assert evaluate_instants(period, kernel, [3, 3, 3]) == pytest.approx(
            evaluate_instants(period, kernel, [3])
        )

    def test_matches_schedule_bookkeeping(self, small_problem):
        schedule = GreedyScheduler().solve(small_problem)
        recomputed = evaluate_instants(
            small_problem.period,
            small_problem.kernel,
            schedule.pooled_instants,
        )
        assert recomputed == pytest.approx(schedule.objective_value, rel=1e-9)


class TestAverageCoverageCrossCheck:
    def test_detects_wrong_stored_value(self, small_problem):
        """average_coverage recomputes from assignments, so a corrupted
        stored objective is caught by comparing the two."""
        schedule = Schedule(
            problem=small_problem,
            assignments={"a": [0, 5]},
            objective_value=999.0,  # wrong on purpose
        )
        assert average_coverage(schedule) != pytest.approx(
            schedule.average_coverage
        )


class TestPhoneMessageHandlerFailures:
    def test_failed_send_counted_and_returns_none(self):
        from repro.common.clock import ManualClock
        from repro.net import Envelope, MessageType, NetworkConditions
        from repro.net.transport import Network
        from repro.phone.message_handler import PhoneMessageHandler
        from repro.phone.power import Battery, WakeLockManager

        clock = ManualClock()
        network = Network(
            conditions=NetworkConditions(drop_probability=1.0),
            rng=np.random.default_rng(0),
        )
        handler = PhoneMessageHandler(
            "phone-x", network, WakeLockManager(clock, Battery())
        )

        class Sink:
            def handle_request(self, request):
                raise AssertionError("must be dropped before reaching me")

        network.register("srv", Sink())
        envelope = Envelope(MessageType.PING, "phone-x", "srv", {})
        assert handler.send("srv", envelope) is None
        assert handler.messages_failed == 1

    def test_wake_lock_released_even_on_failure(self):
        from repro.common.clock import ManualClock
        from repro.net import Envelope, MessageType, NetworkConditions
        from repro.net.transport import Network
        from repro.phone.message_handler import PhoneMessageHandler
        from repro.phone.power import Battery, WakeLockManager

        clock = ManualClock()
        locks = WakeLockManager(clock, Battery())
        network = Network(
            conditions=NetworkConditions(drop_probability=1.0),
            rng=np.random.default_rng(0),
        )
        network.register("srv", object())  # never reached
        handler = PhoneMessageHandler("phone-x", network, locks)
        handler.send("srv", Envelope(MessageType.PING, "phone-x", "srv", {}))
        assert not locks.is_held
