"""Tests for the greedy scheduler (paper Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    MobileUser,
    SchedulingPeriod,
    SchedulingProblem,
    average_coverage,
    brute_force_optimal,
)


def random_problem(rng, *, num_instants=12, duration=120.0, users=3, max_budget=3):
    mobile_users = []
    for index in range(users):
        arrival = float(rng.uniform(0, duration * 0.8))
        departure = float(rng.uniform(arrival + duration * 0.1, duration))
        budget = int(rng.integers(1, max_budget + 1))
        mobile_users.append(MobileUser(f"u{index}", arrival, departure, budget))
    period = SchedulingPeriod(0.0, duration, num_instants)
    return SchedulingProblem(period, mobile_users, GaussianKernel(sigma=20.0))


class TestBasics:
    def test_respects_constraints(self, paper_problem):
        schedule = GreedyScheduler().solve(paper_problem)
        schedule.validate()  # budgets, windows, duplicates

    def test_objective_value_is_accurate(self, paper_problem):
        schedule = GreedyScheduler().solve(paper_problem)
        assert average_coverage(schedule) == pytest.approx(
            schedule.average_coverage, rel=1e-9
        )

    def test_every_user_with_window_gets_work(self, small_problem):
        schedule = GreedyScheduler().solve(small_problem)
        assert all(len(v) > 0 for v in schedule.assignments.values())

    def test_zero_budget_user_gets_nothing(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        users = [MobileUser("idle", 0, 100, 0), MobileUser("busy", 0, 100, 3)]
        problem = SchedulingProblem(period, users, GaussianKernel(10.0))
        schedule = GreedyScheduler().solve(problem)
        assert schedule.assignments["idle"] == []
        assert len(schedule.assignments["busy"]) == 3

    def test_spreads_measurements(self):
        """Greedy must not cluster all instants together."""
        period = SchedulingPeriod(0.0, 1000.0, 100)
        users = [MobileUser("u", 0, 1000, 5)]
        problem = SchedulingProblem(period, users, GaussianKernel(sigma=20.0))
        schedule = GreedyScheduler().solve(problem)
        instants = schedule.assignments["u"]
        gaps = np.diff(sorted(instants))
        assert gaps.min() >= 10  # ~evenly spread over 100 instants

    def test_matroid_for_matches_problem(self, small_problem):
        scheduler = GreedyScheduler()
        matroid = scheduler.matroid_for(small_problem)
        schedule = scheduler.solve(small_problem)
        by_index = {user.user_id: i for i, user in enumerate(small_problem.users)}
        elements = {
            (by_index[user_id], instant)
            for user_id, instants in schedule.assignments.items()
            for instant in instants
        }
        assert matroid.is_independent(elements)


class TestLazyEqualsNaive:
    def test_paper_scale_identical(self, paper_problem):
        lazy = GreedyScheduler(lazy=True).solve(paper_problem)
        naive = GreedyScheduler(lazy=False).solve(paper_problem)
        assert lazy.assignments == naive.assignments
        assert lazy.objective_value == pytest.approx(naive.objective_value)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_instances_identical(self, seed):
        rng = np.random.default_rng(seed)
        problem = random_problem(rng, num_instants=30, duration=300.0, users=4)
        lazy = GreedyScheduler(lazy=True).solve(problem)
        naive = GreedyScheduler(lazy=False).solve(problem)
        assert lazy.assignments == naive.assignments


class TestApproximationGuarantee:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_at_least_half_optimal(self, seed):
        """Greedy ≥ ½ · OPT (Fisher–Nemhauser–Wolsey via paper ref 10)."""
        rng = np.random.default_rng(seed)
        problem = random_problem(rng, num_instants=8, duration=80.0, users=2,
                                 max_budget=2)
        optimal_value, _ = brute_force_optimal(problem)
        greedy_value = GreedyScheduler().solve(problem).objective_value
        assert greedy_value >= 0.5 * optimal_value - 1e-9

    def test_usually_much_better_than_half(self, small_problem):
        optimal_value, _ = brute_force_optimal(small_problem)
        greedy_value = GreedyScheduler().solve(small_problem).objective_value
        assert greedy_value >= 0.9 * optimal_value  # empirically near-optimal


class TestMinGain:
    def test_zero_min_gain_exhausts_budgets(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        users = [MobileUser("u", 0, 100, 10)]
        problem = SchedulingProblem(period, users, GaussianKernel(5.0))
        schedule = GreedyScheduler(min_gain=0.0).solve(problem)
        assert len(schedule.assignments["u"]) == 10

    def test_default_stops_at_negligible_gain(self):
        period = SchedulingPeriod(0.0, 100.0, 10)
        # One user with a huge budget and a very wide kernel: after all
        # 10 instants are chosen nothing remains to gain.
        users = [MobileUser("u", 0, 100, 100)]
        problem = SchedulingProblem(period, users, GaussianKernel(5.0))
        schedule = GreedyScheduler().solve(problem)
        assert len(schedule.assignments["u"]) <= 10


class TestTieBreaking:
    """The explicit lowest-index tie-break contract (regression tests).

    Both backends and both strategies must land on the same instant when
    marginal gains tie exactly — otherwise cross-backend schedules
    diverge on the first plateau (uniform gains at step 0 are the
    everyday case: every instant of an empty schedule gains w_0).
    """

    def test_argmax_tied_low_picks_first_of_exact_ties(self):
        from repro.core.scheduling import argmax_tied_low

        assert argmax_tied_low(np.array([0.0, 3.5, 3.5, 1.0])) == 1
        assert argmax_tied_low(np.array([2.0, 2.0, 2.0])) == 0
        assert argmax_tied_low(np.array([-np.inf, -np.inf])) == 0
        assert argmax_tied_low(np.array([1.0, np.nextafter(1.0, 2.0)])) == 1

    def test_uniform_plateau_schedules_lowest_instants_first(self):
        # A kernel so narrow no two instants interact: every gain ties
        # at w_0 forever, so greedy must walk indices left to right.
        period = SchedulingPeriod(0.0, 1000.0, 10)
        users = [MobileUser("u", 0, 1000, 4)]
        problem = SchedulingProblem(period, users, GaussianKernel(sigma=1e-6))
        for backend in ("numpy", "reference"):
            for lazy in (True, False):
                schedule = GreedyScheduler(backend=backend, lazy=lazy).solve(
                    problem
                )
                assert schedule.assignments["u"] == [0, 1, 2, 3], (backend, lazy)

    def test_symmetric_problem_is_deterministic_across_variants(self):
        # Mirror-symmetric setup: gains tie in symmetric pairs at every
        # step. All four scheduler variants and a re-run must agree.
        period = SchedulingPeriod(0.0, 600.0, 24)
        users = [
            MobileUser("a", 0, 600, 3),
            MobileUser("b", 0, 600, 3),
        ]
        problem = SchedulingProblem(period, users, GaussianKernel(sigma=60.0))
        schedules = [
            GreedyScheduler(backend=backend, lazy=lazy).solve(problem)
            for backend in ("numpy", "reference")
            for lazy in (True, False)
        ]
        schedules.append(GreedyScheduler().solve(problem))
        for other in schedules[1:]:
            assert other.assignments == schedules[0].assignments
