"""Tests for GF(256) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.barcode import galois as gf
from repro.common.errors import BarcodeError

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_addition_commutes_and_is_xor(self, a, b):
        assert gf.gf_add(a, b) == gf.gf_add(b, a) == a ^ b

    @given(a=elements)
    def test_additive_inverse_is_self(self, a):
        assert gf.gf_add(a, a) == 0

    @given(a=elements, b=elements)
    def test_multiplication_commutes(self, a, b):
        assert gf.gf_mul(a, b) == gf.gf_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_multiplication_associates(self, a, b, c):
        assert gf.gf_mul(gf.gf_mul(a, b), c) == gf.gf_mul(a, gf.gf_mul(b, c))

    @given(a=elements, b=elements, c=elements)
    def test_distributivity(self, a, b, c):
        left = gf.gf_mul(a, gf.gf_add(b, c))
        right = gf.gf_add(gf.gf_mul(a, b), gf.gf_mul(a, c))
        assert left == right

    @given(a=elements)
    def test_multiplicative_identity(self, a):
        assert gf.gf_mul(a, 1) == a

    @given(a=nonzero)
    def test_inverse(self, a):
        assert gf.gf_mul(a, gf.gf_inverse(a)) == 1

    @given(a=nonzero, b=nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf.gf_div(gf.gf_mul(a, b), b) == a

    def test_zero_has_no_inverse(self):
        with pytest.raises(BarcodeError):
            gf.gf_inverse(0)
        with pytest.raises(BarcodeError):
            gf.gf_div(1, 0)

    @given(a=nonzero, power=st.integers(-10, 10))
    def test_pow_matches_repeated_multiplication(self, a, power):
        expected = 1
        for _ in range(abs(power)):
            expected = gf.gf_mul(expected, a)
        if power < 0:
            expected = gf.gf_inverse(expected)
        assert gf.gf_pow(a, power) == expected


class TestPolynomials:
    def test_poly_eval_horner(self):
        # p(x) = 2x² + 3x + 1 over GF(256) at x = 1 → 2 ^ 3 ^ 1 = 0
        assert gf.poly_eval([2, 3, 1], 1) == 2 ^ 3 ^ 1

    @given(
        a=st.lists(elements, min_size=1, max_size=6).filter(lambda p: p[0] != 0),
        b=st.lists(elements, min_size=1, max_size=6).filter(lambda p: p[0] != 0),
        x=elements,
    )
    def test_poly_mul_evaluates_pointwise(self, a, b, x):
        product = gf.poly_mul(a, b)
        assert gf.poly_eval(product, x) == gf.gf_mul(
            gf.poly_eval(a, x), gf.poly_eval(b, x)
        )

    @given(
        dividend=st.lists(elements, min_size=3, max_size=10).filter(
            lambda p: p[0] != 0
        ),
        divisor=st.lists(elements, min_size=1, max_size=3).filter(
            lambda p: p[0] != 0
        ),
    )
    def test_divmod_reconstructs(self, dividend, divisor):
        quotient, remainder = gf.poly_divmod(dividend, divisor)
        rebuilt = gf.poly_add(gf.poly_mul(quotient, divisor) if quotient else [0], remainder)
        # strip leading zeros for comparison
        def strip(poly):
            poly = list(poly)
            while len(poly) > 1 and poly[0] == 0:
                poly.pop(0)
            return poly

        assert strip(rebuilt) == strip(dividend)
