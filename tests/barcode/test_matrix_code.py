"""Tests for the 2D matrix symbology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.barcode import decode_matrix, encode_matrix
from repro.barcode.matrix_code import BitMatrix
from repro.common.errors import BarcodeError


class TestRoundtrip:
    def test_simple(self):
        payload = b"SOR place payload"
        assert decode_matrix(encode_matrix(payload)) == payload

    def test_single_byte(self):
        assert decode_matrix(encode_matrix(b"\x00")) == b"\x00"

    def test_binary_payload(self):
        payload = bytes(range(200, 256)) * 2
        assert decode_matrix(encode_matrix(payload)) == payload

    def test_matrix_is_square_with_timing(self):
        matrix = encode_matrix(b"x" * 30)
        assert len(matrix.modules) == matrix.size
        assert all(len(row) == matrix.size for row in matrix.modules)
        # Timing pattern alternates starting dark.
        assert matrix.get(0, 0) is True
        assert matrix.get(0, 1) is False
        assert matrix.get(1, 0) is False


class TestDamage:
    def test_corrects_flipped_data_modules(self):
        payload = b"resilient payload!"
        matrix = encode_matrix(payload, ecc_symbols=10)
        size = matrix.size
        # Flip a handful of modules in the data region (≤ 5 byte errors).
        for row, column in [(2, 2), (2, 3), (5, 7), (9, 1), (size - 1, size - 1)]:
            matrix.flip(row, column)
        assert decode_matrix(matrix, ecc_symbols=10) == payload

    def test_header_survives_one_copy_corruption(self):
        payload = b"header-vote"
        matrix = encode_matrix(payload)
        matrix.flip(1, 1)  # first header bit lives at the first data cell
        assert decode_matrix(matrix) == payload

    def test_rotated_symbol_rejected(self):
        matrix = encode_matrix(b"orientation")
        rotated = BitMatrix(
            size=matrix.size,
            modules=[list(row) for row in zip(*matrix.modules[::-1])],
        )
        with pytest.raises(BarcodeError):
            decode_matrix(rotated)

    def test_blank_matrix_rejected(self):
        with pytest.raises(BarcodeError):
            decode_matrix(BitMatrix.empty(12))

    def test_tiny_matrix_rejected(self):
        with pytest.raises(BarcodeError):
            decode_matrix(BitMatrix.empty(1))


class TestRendering:
    def test_to_text_dimensions(self):
        matrix = encode_matrix(b"art")
        art = matrix.to_text(dark="#", light=".")
        lines = art.splitlines()
        assert len(lines) == matrix.size
        assert all(len(line) == matrix.size for line in lines)

    def test_copy_is_independent(self):
        matrix = encode_matrix(b"copy")
        clone = matrix.copy()
        clone.flip(0, 0)
        assert matrix.get(0, 0) != clone.get(0, 0)


@settings(max_examples=60)
@given(
    payload=st.binary(min_size=1, max_size=150),
    seed=st.integers(0, 2**31),
    flips=st.integers(0, 4),
)
def test_roundtrip_with_random_damage(payload, seed, flips):
    """Random payloads survive a few random data-region module flips."""
    import random

    matrix = encode_matrix(payload, ecc_symbols=16)
    rnd = random.Random(seed)
    header_cells = 48  # protected by triple redundancy, avoid in this test
    data_cells = [
        (row, column)
        for row in range(1, matrix.size)
        for column in range(1, matrix.size)
    ][header_cells:]
    # ≤4 flipped modules can hit at most 4 codeword bytes < capacity 8.
    for row, column in rnd.sample(data_cells, min(flips, len(data_cells))):
        matrix.flip(row, column)
    assert decode_matrix(matrix, ecc_symbols=16) == payload
