"""Tests for the place payload carried by barcodes."""

import pytest

from repro.barcode import PlacePayload, decode_place_barcode, encode_place_barcode
from repro.common.errors import BarcodeError


def make_payload(**overrides):
    defaults = dict(
        place_id="starbucks",
        name="Starbucks",
        category="coffee_shop",
        latitude=43.0412,
        longitude=-76.1350,
        app_id="app-starbucks",
        server_host="sor-server",
    )
    defaults.update(overrides)
    return PlacePayload(**defaults)


class TestPlacePayload:
    def test_bytes_roundtrip(self):
        payload = make_payload()
        assert PlacePayload.from_bytes(payload.to_bytes()) == payload

    def test_unicode_name(self):
        payload = make_payload(name="Café Près du Lac")
        assert PlacePayload.from_bytes(payload.to_bytes()).name == payload.name

    def test_wrong_shape_rejected(self):
        from repro.net.codec import encode_value

        with pytest.raises(BarcodeError):
            PlacePayload.from_bytes(encode_value(["just", "two"]))

    def test_wrong_types_rejected(self):
        from repro.net.codec import encode_value

        bad = encode_value(["a", "b", "c", "not-a-float", 1.0, "e", "f"])
        with pytest.raises(BarcodeError):
            PlacePayload.from_bytes(bad)

    def test_garbage_rejected(self):
        with pytest.raises(BarcodeError):
            PlacePayload.from_bytes(b"\xff\xfe\x00")


class TestBarcodeScan:
    def test_scan_roundtrip(self):
        payload = make_payload()
        assert decode_place_barcode(encode_place_barcode(payload)) == payload

    def test_scan_survives_damage(self):
        payload = make_payload()
        matrix = encode_place_barcode(payload)
        for row, column in [(3, 4), (7, 7), (11, 2), (2, 11)]:
            matrix.flip(row, column)
        assert decode_place_barcode(matrix) == payload
