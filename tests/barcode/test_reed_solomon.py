"""Tests for the Reed–Solomon codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.barcode import ReedSolomonCodec
from repro.common.errors import BarcodeError


class TestEncode:
    def test_appends_parity(self):
        codec = ReedSolomonCodec(10)
        encoded = codec.encode(b"hello")
        assert encoded[:5] == b"hello"
        assert len(encoded) == 15

    def test_empty_rejected(self):
        with pytest.raises(BarcodeError):
            ReedSolomonCodec(4).encode(b"")

    def test_oversized_rejected(self):
        with pytest.raises(BarcodeError):
            ReedSolomonCodec(10).encode(bytes(250))

    def test_bad_parity_count_rejected(self):
        with pytest.raises(BarcodeError):
            ReedSolomonCodec(1)
        with pytest.raises(BarcodeError):
            ReedSolomonCodec(255)


class TestDecode:
    def test_clean_roundtrip(self):
        codec = ReedSolomonCodec(8)
        assert codec.decode(codec.encode(b"payload")) == b"payload"

    def test_corrects_up_to_capacity(self):
        codec = ReedSolomonCodec(10)
        data = bytes(range(50))
        codeword = bytearray(codec.encode(data))
        for position in (0, 13, 27, 44, 58):  # 5 = capacity
            codeword[position] ^= 0xA5
        assert codec.decode(bytes(codeword)) == data

    def test_error_in_parity_corrected(self):
        codec = ReedSolomonCodec(6)
        data = b"abcdef"
        codeword = bytearray(codec.encode(data))
        codeword[-1] ^= 0xFF
        codeword[-3] ^= 0x42
        assert codec.decode(bytes(codeword)) == data

    def test_too_many_errors_detected(self):
        codec = ReedSolomonCodec(4)  # corrects 2
        codeword = bytearray(codec.encode(bytes(range(30))))
        for position in (1, 5, 9, 13, 17, 21):
            codeword[position] ^= 0x77
        with pytest.raises(BarcodeError):
            codec.decode(bytes(codeword))

    def test_short_codeword_rejected(self):
        with pytest.raises(BarcodeError):
            ReedSolomonCodec(10).decode(b"short")

    def test_max_correctable(self):
        assert ReedSolomonCodec(10).max_correctable == 5
        assert ReedSolomonCodec(7).max_correctable == 3


@settings(max_examples=150)
@given(
    data=st.binary(min_size=1, max_size=120),
    seed=st.integers(0, 2**32 - 1),
    error_count=st.integers(0, 5),
)
def test_correction_property(data, seed, error_count):
    """Any ≤5 byte errors anywhere in an RS(·,·,10) codeword correct."""
    import random

    codec = ReedSolomonCodec(10)
    codeword = bytearray(codec.encode(data))
    rnd = random.Random(seed)
    for position in rnd.sample(range(len(codeword)), error_count):
        codeword[position] ^= rnd.randrange(1, 256)
    assert codec.decode(bytes(codeword)) == data
