"""Integration tests: the full SOR protocol end to end."""

import numpy as np

from repro.net import NetworkConditions
from repro.server import SORSystem
from repro.sim.scenarios import (
    customer_profiles,
    hiker_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
    syracuse_trails,
    trail_feature_pipeline,
)


def deploy_shops(system, *, phones=4, budget=10, seed=0):
    rng = np.random.default_rng(seed)
    shops = syracuse_coffee_shops(rng)
    pipeline = shop_feature_pipeline()
    for shop in shops:
        system.deploy_place(shop, pipeline)
        for _ in range(phones):
            system.deploy_phone(shop.place_id, budget=budget)
    return shops


class TestCoffeeShopDeployment:
    def test_full_pipeline_produces_paper_rankings(self):
        system = SORSystem(seed=42)
        deploy_shops(system, phones=6, budget=20)
        system.run()
        reports = system.process_and_rank("coffee_shop", customer_profiles())
        names = {pid: d.place.name for pid, d in system.places.items()}
        david = [names[p] for p in reports["David"].ranking.items]
        emma = [names[p] for p in reports["Emma"].ranking.items]
        assert david == ["Starbucks", "B&N Cafe", "Tim Hortons"]
        assert emma == ["B&N Cafe", "Tim Hortons", "Starbucks"]

    def test_feature_data_lands_in_database(self):
        system = SORSystem(seed=1)
        deploy_shops(system)
        system.run()
        system.server.process_data()
        system.server.compute_all_features()
        values = system.feature_values("coffee_shop")
        assert len(values) == 3
        for features in values.values():
            assert set(features) == {"temperature", "brightness", "noise", "wifi"}

    def test_raw_blobs_stored_before_processing(self):
        system = SORSystem(seed=1)
        deploy_shops(system, phones=2, budget=5)
        system.run()
        raw = system.server.database.table("raw_data")
        assert raw.count() == 6  # one upload per phone
        assert all(not row["processed"] for row in raw.select())
        system.server.process_data()
        assert all(row["processed"] for row in raw.select())

    def test_schedules_respect_budgets(self):
        system = SORSystem(seed=2)
        deploy_shops(system, phones=3, budget=7)
        system.run()
        for deployed in system.phones:
            assert deployed.task is not None
            assert len(deployed.task.sensing_times) <= 7

    def test_tasks_finish_and_report(self):
        system = SORSystem(seed=3)
        deploy_shops(system, phones=2, budget=4)
        system.run()
        for deployed in system.phones:
            assert deployed.task.is_done
            assert deployed.task.error is None

    def test_phone_energy_consumed(self):
        system = SORSystem(seed=4)
        deploy_shops(system, phones=2, budget=4)
        system.run()
        for deployed in system.phones:
            assert deployed.phone.battery.remaining_mj < (
                deployed.phone.battery.capacity_mj
            )

    def test_staggered_arrivals_schedule_remaining_window(self):
        system = SORSystem(seed=5)
        rng = np.random.default_rng(5)
        shop = syracuse_coffee_shops(rng)[0]
        system.deploy_place(shop, shop_feature_pipeline())
        system.deploy_phone(
            shop.place_id, budget=10,
            arrive_time=system.start_time + 3600.0,
            depart_time=system.start_time + 7200.0,
        )
        system.run()
        task = system.phones[0].task
        assert task is not None
        assert all(
            system.start_time + 3600.0 <= t <= system.start_time + 7200.0
            for t in task.sensing_times
        )


class TestTrailDeployment:
    def test_trail_rankings_match_table1(self):
        system = SORSystem(seed=7)
        rng = np.random.default_rng(7)
        for trail in syracuse_trails(rng):
            system.deploy_place(trail, trail_feature_pipeline())
            for _ in range(7):
                system.deploy_phone(trail.place_id, budget=40)
        system.run()
        reports = system.process_and_rank("hiking_trail", hiker_profiles())
        names = {pid: d.place.name for pid, d in system.places.items()}
        assert [names[p] for p in reports["Alice"].ranking.items] == [
            "Cliff Trail", "Long Trail", "Green Lake Trail",
        ]
        assert [names[p] for p in reports["Bob"].ranking.items] == [
            "Long Trail", "Cliff Trail", "Green Lake Trail",
        ]
        assert [names[p] for p in reports["Chris"].ranking.items] == [
            "Green Lake Trail", "Long Trail", "Cliff Trail",
        ]


class TestLossyNetwork:
    def test_system_survives_packet_loss(self):
        """Some scans fail but the pipeline still produces rankings."""
        system = SORSystem(
            seed=11,
            network_conditions=NetworkConditions(drop_probability=0.15),
        )
        deploy_shops(system, phones=8, budget=12, seed=11)
        system.run()
        # Not every phone participated, but at least some data flowed.
        succeeded = [d for d in system.phones if d.task is not None]
        assert 0 < len(succeeded) <= 24
        system.server.process_data()
        features = system.server.compute_all_features()
        assert len(features) >= 1

    def test_dropped_scan_returns_none(self):
        system = SORSystem(
            seed=13,
            network_conditions=NetworkConditions(drop_probability=1.0),
        )
        deploy_shops(system, phones=1, budget=3, seed=13)
        system.run()
        assert all(deployed.task is None for deployed in system.phones)


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run_once():
            system = SORSystem(seed=99)
            deploy_shops(system, phones=3, budget=6, seed=99)
            system.run()
            system.server.process_data()
            return system.server.compute_all_features()

        assert run_once() == run_once()
