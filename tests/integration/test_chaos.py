"""The chaos acceptance test: the full protocol survives a lossy link.

Seeded, ≥20 % loss on *each* leg. The resilient stack must complete the
end-to-end field test with zero lost schedules/readings and zero
duplicate ingestions, while the same impairments on the pre-resilience
client demonstrably lose data. This is the scenario the CI
``chaos-smoke`` job runs.
"""

import numpy as np
import pytest

from repro.common.errors import TransportError
from repro.net import HttpRequest
from repro.obs import MetricsRegistry, use_metrics
from repro.obs.export import to_prometheus_text
from repro.server.system import SORSystem
from repro.sim.chaos import ChaosSpec, run_chaos_scenario
from repro.sim.scenarios import shop_feature_pipeline, syracuse_coffee_shops

SPEC = ChaosSpec(
    request_drop=0.25,
    response_drop=0.25,
    latency_spike_probability=0.05,
    phones=4,
    budget=5,
    seed=0,
)


class TestChaosScenario:
    def test_resilient_run_loses_nothing(self):
        report = run_chaos_scenario(SPEC)
        assert report.data_intact
        assert report.phones_deployed == 4
        assert report.tasks_created == 4  # one per phone, none duplicated
        assert report.uploads_ingested == 4

    def test_the_faults_were_actually_injected(self):
        report = run_chaos_scenario(SPEC)
        assert report.requests_dropped > 0
        assert report.responses_dropped > 0  # delivered-but-unacked happened
        assert report.retries_total > 0  # and retries papered over it

    def test_resilient_across_seeds(self):
        for seed in (1, 2):
            report = run_chaos_scenario(ChaosSpec(seed=seed))
            assert report.data_intact, f"seed {seed} lost data"

    def test_pre_resilience_client_demonstrably_loses_data(self):
        """The contrast the tentpole exists for: same seed, same
        impairments, retries off → the field test loses data."""
        report = run_chaos_scenario(
            ChaosSpec(seed=SPEC.seed, resilient=False)
        )
        assert not report.data_intact
        assert report.lost_schedules > 0

    def test_retry_and_breaker_metrics_in_report_registry(self):
        report = run_chaos_scenario(SPEC)
        text = to_prometheus_text(report.metrics)
        assert "sor_net_retries_total" in text
        assert "sor_net_circuit_state" in text
        assert "sor_net_retry_backoff_seconds" in text


class TestMetricsEndpointUnderChaos:
    def test_server_metrics_endpoint_exposes_resilience_metrics(self):
        """GET /metrics on the live server shows retry/breaker series."""
        registry = MetricsRegistry()
        with use_metrics(registry):
            system = SORSystem(seed=0, network_conditions=SPEC.conditions())
            shop = syracuse_coffee_shops(np.random.default_rng(0))[0]
            system.deploy_place(shop, shop_feature_pipeline())
            system.deploy_phone(shop.place_id, budget=3)
            system.run()
            # Scrape through the same lossy network a monitor would use;
            # retry until a request survives both legs.
            response = None
            for _ in range(50):
                try:
                    response = system.network.send(
                        HttpRequest("GET", system.server.host, "/metrics")
                    )
                    break
                except TransportError:
                    continue
            assert response is not None and response.ok
            text = response.body.decode("utf-8")
            assert "sor_net_retries_total" in text
            assert "sor_net_circuit_state" in text
            assert "sor_net_resilient_sends_total" in text


class TestChaosSpecValidation:
    def test_rejects_non_probability_drops(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            ChaosSpec(request_drop=1.5)
        with pytest.raises(ValidationError):
            ChaosSpec(response_drop=-0.1)
        with pytest.raises(ValidationError):
            ChaosSpec(phones=0)
