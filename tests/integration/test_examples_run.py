"""Smoke-run every example script — examples must never rot.

Each example runs in a subprocess with reduced workloads where the
script supports arguments; success means a zero exit code and the
expected headline strings on stdout.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "greedy   average coverage" in out
        assert "aggregated ranking for Emma" in out

    def test_hiking_trails(self):
        out = run_example("hiking_trails.py")
        assert "matches paper: YES" in out
        assert "Cliff Trail" in out

    def test_coffee_shops_end_to_end(self):
        out = run_example("coffee_shops_end_to_end.py")
        assert "Starbucks" in out
        assert "SOR data acquisition procedure" in out
        assert "Table II" in out

    def test_scheduling_simulation_one_run(self):
        out = run_example("scheduling_simulation.py", "1")
        assert "Fig. 14(a)" in out
        assert "mean improvement" in out

    def test_custom_deployment(self):
        out = run_example("custom_deployment.py")
        assert "Carnegie Reading Room" in out
        assert "Ranking for Scholar" in out

    def test_hybrid_rankings(self):
        out = run_example("hybrid_rankings.py")
        assert "blended ranking" in out

    def test_generate_report(self, tmp_path):
        out = run_example("generate_report.py", str(tmp_path / "report"), "1")
        assert "Done:" in out
        assert (tmp_path / "report" / "report.md").exists()
        assert (tmp_path / "report" / "fig14a.svg").exists()
