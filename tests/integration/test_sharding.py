"""End-to-end sharding tests: lossy fleet, repeated primary kills, audit.

The chaos scenario is the load-bearing claim for durable failover:
three shard primaries die mid-field-test under 20% loss on each network
leg — the victim shard twice in a row, the second kill landing on the
freshly *promoted* primary mid-reseed with a wrecked WAL tail — and
*every* acked schedule and upload is still present in the surviving
primaries' tables afterward. Acked means committed to the WAL, the WAL
is the replication log, and promotion re-attaches a live WAL, so the
run ends by killing the promoted primary once more and recovering it
from disk alone.
"""

import pytest

from repro.sim.loadgen import LoadgenSpec, run_loadgen
from repro.sim.shard_chaos import (
    ShardChaosSpec,
    format_shard_chaos_report,
    run_shard_chaos,
)

CHAOS = ShardChaosSpec(
    phones=60,
    shards=3,
    replicas=1,
    categories=6,
    places=12,
    clients=6,
    seed=2014,
    request_drop=0.2,
    response_drop=0.2,
    kill_shard=1,
    kill_after_schedules=12,
    downtime_s=0.05,
    kills=3,
)


@pytest.fixture(scope="module")
def chaos_report():
    return run_shard_chaos(CHAOS)


class TestShardChaos:
    def test_loss_was_actually_injected(self, chaos_report):
        assert chaos_report.requests_dropped > 0
        assert chaos_report.responses_dropped > 0

    def test_every_kill_cycle_failed_over(self, chaos_report):
        assert chaos_report.kills == 3
        assert chaos_report.failovers == 3
        assert chaos_report.killed_shard == "shard-1"

    def test_every_promotion_was_reseeded(self, chaos_report):
        # Cycle 0 defers its reseed so cycle 1 can race the kill against
        # it; every cycle still ends with a replacement replica.
        assert chaos_report.reseeds == 3

    def test_promoted_primary_recovers_from_reattached_wal(self, chaos_report):
        assert chaos_report.promoted_recovery_ok

    def test_every_phone_completed(self, chaos_report):
        assert chaos_report.acked_schedules == CHAOS.phones
        assert chaos_report.acked_uploads == CHAOS.phones

    def test_no_acked_data_was_lost(self, chaos_report):
        assert chaos_report.lost_schedules == 0
        assert chaos_report.lost_uploads == 0

    def test_retries_never_duplicated_state(self, chaos_report):
        assert chaos_report.duplicate_tasks == 0
        assert chaos_report.duplicate_uploads == 0

    def test_replica_lag_drains_to_zero(self, chaos_report):
        assert chaos_report.replica_lag_after_sync == 0

    def test_report_rolls_up_to_data_intact(self, chaos_report):
        assert chaos_report.data_intact
        text = format_shard_chaos_report(chaos_report)
        assert "intact" in text.lower()


class TestShardedLoadgen:
    def test_sharded_run_matches_single_server_workload(self):
        # Same phones, same seed: the only difference is the deployment.
        # The workload digest (request contents in order, per phone)
        # must be identical, so the bench compares like with like.
        single = LoadgenSpec(
            phones=80, seed=7, clients=4, workers=2, places=8,
            categories=4, rank_every=2,
        )
        sharded = LoadgenSpec(
            phones=80, seed=7, clients=4, workers=2, places=8,
            categories=4, rank_every=2, shards=2, replicas=1,
        )
        base = run_loadgen(single)
        result = run_loadgen(sharded)
        assert result.sessions_completed == 80
        assert result.error_replies == 0 and result.replay_mismatches == 0
        assert result.workload_digest == base.workload_digest
        assert result.requests_ok == base.requests_ok
