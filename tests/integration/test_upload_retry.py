"""Upload retry: data survives transient network loss."""

import numpy as np
import pytest

from repro.barcode import PlacePayload, encode_place_barcode
from repro.common.clock import ManualClock
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import NetworkConditions
from repro.net.transport import Network
from repro.phone import MobilePhone
from repro.sensors import ScalarProvider, SensorKind, SensorSpec
from repro.server import SensingServer
from repro.server.app_manager import Application

PLACE = LatLon(43.05, -76.15)


@pytest.fixture
def world():
    clock = ManualClock(start=100.0)
    network = Network(
        conditions=NetworkConditions(drop_probability=0.0),
        rng=np.random.default_rng(0),
    )
    server = SensingServer("server", network, clock)
    server.register_user("alice", "Alice", "tok-a")
    server.create_application(
        Application(
            app_id="app-1",
            creator="owner",
            place_id="place-1",
            place_name="Place One",
            category="coffee_shop",
            location=PLACE,
            script="return get_temperature_readings(2, 1.0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    phone = MobilePhone(user_id="alice", token="tok-a", network=network, clock=clock)
    phone.set_location_source(lambda t: PLACE)
    spec = SensorSpec("temperature", SensorKind.EXTERNAL, "F", freshness_s=0.0)
    phone.add_provider(
        ScalarProvider(spec, clock, np.random.default_rng(1), lambda t: 70.0)
    )
    barcode = encode_place_barcode(
        PlacePayload("place-1", "Place One", "coffee_shop",
                     PLACE.latitude, PLACE.longitude, "app-1", "server")
    )
    return clock, network, server, phone, barcode


class TestUploadRetry:
    def test_dropped_upload_retried_next_tick(self, world):
        clock, network, server, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=2)
        # Break the network before any upload can happen: sensing still
        # works (it is local), but every upload attempt is dropped.
        network.conditions = NetworkConditions(drop_probability=1.0)
        for sense_time in list(task.sensing_times):
            if sense_time > clock.now():
                clock.set(sense_time)
            phone.tick()
        clock.advance(1.0)
        phone.tick()
        assert task.is_done
        assert server.database.table("raw_data").count() == 0
        # Network heals; the next tick retries and succeeds.
        network.conditions = NetworkConditions(drop_probability=0.0)
        clock.advance(1.0)
        phone.tick()
        assert server.database.table("raw_data").count() == 1
        # And no duplicate upload afterwards.
        clock.advance(1.0)
        phone.tick()
        assert server.database.table("raw_data").count() == 1

    def test_feature_charts_after_recovery(self, world):
        clock, network, server, phone, barcode = world
        task = phone.scan_barcode(barcode, budget=2)
        for sense_time in list(task.sensing_times):
            if sense_time > clock.now():
                clock.set(sense_time)
            phone.tick()
        clock.advance(1.0)
        phone.tick()
        server.process_data()
        server.compute_all_features()
        charts = server.feature_charts("coffee_shop")
        assert "temperature" in charts
        assert "place-1" in charts

    def test_charts_empty_category(self, world):
        *_, server, _, _ = world
        assert "no feature data" in server.feature_charts("ghost-category")
