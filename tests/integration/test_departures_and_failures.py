"""Early departures and phone failures in a full deployment."""

import numpy as np

from repro.server import SORSystem
from repro.server.participation import ParticipationStatus
from repro.sim.scenarios import (
    customer_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
)


class TestEarlyDeparture:
    def test_departing_user_marked_finished(self):
        system = SORSystem(seed=51)
        rng = np.random.default_rng(51)
        shop = syracuse_coffee_shops(rng)[0]
        system.deploy_place(shop, shop_feature_pipeline())
        early = system.deploy_phone(
            shop.place_id,
            budget=8,
            depart_time=system.start_time + 3600.0,
        )
        stayer = system.deploy_phone(shop.place_id, budget=8)
        system.run()
        early_task = system.server.participation.get_task(early.task.task_id)
        assert early_task["status"] == ParticipationStatus.FINISHED.value
        # The departing user's schedule never exceeded their stay.
        assert all(
            t <= system.start_time + 3600.0 for t in early.task.sensing_times
        )
        # Their data still made it to the server before departure.
        assert early.task.is_done
        stayer_task = system.server.participation.get_task(stayer.task.task_id)
        assert stayer_task["status"] in (
            ParticipationStatus.RUNNING.value,
            ParticipationStatus.FINISHED.value,
        )

    def test_departed_data_still_feeds_features(self):
        system = SORSystem(seed=52)
        rng = np.random.default_rng(52)
        shop = syracuse_coffee_shops(rng)[0]
        system.deploy_place(shop, shop_feature_pipeline())
        system.deploy_phone(
            shop.place_id, budget=10, depart_time=system.start_time + 5400.0
        )
        system.run()
        system.server.process_data()
        features = system.server.compute_all_features()
        assert shop.place_id in features


class TestPhoneFailure:
    def test_dead_battery_mid_run_does_not_break_deployment(self):
        system = SORSystem(seed=53)
        rng = np.random.default_rng(53)
        shops = syracuse_coffee_shops(rng)
        pipeline = shop_feature_pipeline()
        for shop in shops:
            system.deploy_place(shop, pipeline)
            for _ in range(4):
                system.deploy_phone(shop.place_id, budget=10)
        # Sabotage one phone per shop: the battery dies immediately.
        for deployed in system.phones[::4]:
            deployed.phone.battery.drain(
                deployed.phone.battery.capacity_mj, reason="sabotage"
            )
        system.run()
        reports = system.process_and_rank("coffee_shop", customer_profiles())
        names = {pid: d.place.name for pid, d in system.places.items()}
        assert [names[p] for p in reports["Emma"].ranking.items] == [
            "B&N Cafe", "Tim Hortons", "Starbucks",
        ]
        # The sabotaged phones produced nothing.
        dead = [d for d in system.phones if d.phone.battery.is_dead]
        assert len(dead) >= 3
        for deployed in dead:
            if deployed.task is not None:
                assert len(deployed.task.bursts) == 0
