"""Multi-category deployments, report explanations, budget updates."""

import numpy as np
import pytest

from repro.server import SORSystem
from repro.server.reports import explain_report
from repro.sim.scenarios import (
    customer_profiles,
    hiker_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
    syracuse_trails,
    trail_feature_pipeline,
)


@pytest.fixture(scope="module")
def dual_system():
    """One server handling BOTH categories at once (paper: 'SOR can
    certainly deal with multiple categories by using multiple such
    matrices')."""
    system = SORSystem(seed=21)
    rng = np.random.default_rng(21)
    for shop in syracuse_coffee_shops(rng):
        system.deploy_place(shop, shop_feature_pipeline())
        for _ in range(5):
            system.deploy_phone(shop.place_id, budget=15)
    for trail in syracuse_trails(rng):
        system.deploy_place(trail, trail_feature_pipeline())
        for _ in range(5):
            system.deploy_phone(trail.place_id, budget=30)
    system.run()
    system.server.process_data()
    system.server.compute_all_features()
    return system


class TestMultiCategory:
    def test_both_categories_have_feature_data(self, dual_system):
        assert len(dual_system.feature_values("coffee_shop")) == 3
        assert len(dual_system.feature_values("hiking_trail")) == 3

    def test_categories_ranked_independently(self, dual_system):
        shop_report = dual_system.server.ranker.rank(
            "coffee_shop", customer_profiles()[0]
        )
        trail_report = dual_system.server.ranker.rank(
            "hiking_trail", hiker_profiles()[0]
        )
        assert set(shop_report.place_ids).isdisjoint(trail_report.place_ids)
        assert len(shop_report.ranking) == 3
        assert len(trail_report.ranking) == 3

    def test_shop_rankings_unpolluted_by_trails(self, dual_system):
        names = {pid: d.place.name for pid, d in dual_system.places.items()}
        emma = next(p for p in customer_profiles() if p.name == "Emma")
        report = dual_system.server.ranker.rank("coffee_shop", emma)
        assert [names[p] for p in report.ranking.items] == [
            "B&N Cafe", "Tim Hortons", "Starbucks",
        ]


class TestExplanations:
    def test_explanation_contains_all_sections(self, dual_system):
        emma = next(p for p in customer_profiles() if p.name == "Emma")
        report = dual_system.server.ranker.rank("coffee_shop", emma)
        names = {pid: d.place.name for pid, d in dual_system.places.items()}
        text = explain_report(report, place_names=names)
        assert "Ranking for Emma" in text
        assert "Individual rankings" in text
        assert "Why each place landed where it did" in text
        assert "B&N Cafe" in text
        assert "weighted footrule" in text

    def test_explanation_mentions_pulls(self, dual_system):
        alice = next(p for p in hiker_profiles() if p.name == "Alice")
        report = dual_system.server.ranker.rank("hiking_trail", alice)
        text = explain_report(report)
        # Alice's features are unanimous, so every place agrees.
        assert "every feature agrees" in text


class TestRuntimeBudgetUpdate:
    def test_budget_decremented_after_upload(self, dual_system):
        """The paper: the sensing budget 'is updated at runtime'."""
        tasks = dual_system.server.database.table("tasks").select()
        finished = [task for task in tasks if task["status"] == "finished"]
        assert finished, "expected finished tasks"
        # Phones executed their full schedules, so budgets dropped to
        # (initial - executed); with full execution that reaches 0.
        assert all(task["budget"] >= 0 for task in finished)
        assert any(task["budget"] == 0 for task in finished)
