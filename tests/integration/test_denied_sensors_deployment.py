"""Deployment where every participant denies a sensor: ranking must
degrade gracefully to the features that exist."""

import numpy as np

from repro.core.ranking import MIN, FeaturePreference, PreferenceProfile
from repro.server import SORSystem
from repro.sim.scenarios import shop_feature_pipeline, syracuse_coffee_shops


class TestDeniedSensorDeployment:
    def test_all_phones_deny_microphone(self):
        """Noise data never arrives; the other three features still rank."""
        system = SORSystem(seed=61)
        rng = np.random.default_rng(61)
        for shop in syracuse_coffee_shops(rng):
            system.deploy_place(shop, shop_feature_pipeline())
            for _ in range(4):
                deployed = system.deploy_phone(shop.place_id, budget=10)
                deployed.phone.preferences.deny("microphone")
        system.run()
        for server in system.servers:
            server.process_data()
            features = server.compute_all_features()
        # Every task errored at its first script run (the acquisition of
        # the denied sensor raises), so bursts taken before the failure
        # still uploaded — but no microphone bursts exist anywhere.
        for place_features in features.values():
            assert "noise" not in place_features
        assert system.server.data_processor.features_skipped > 0
        # Ranking on the surviving features still works.
        profile = PreferenceProfile(
            "quiet-agnostic",
            {
                "temperature": FeaturePreference(73.0, 3),
                "brightness": FeaturePreference(MIN, 2),
                "noise": FeaturePreference(MIN, 5),  # no data → excluded
                "wifi": FeaturePreference(66.0, 0),
            },
        )
        report = system.server.ranker.rank("coffee_shop", profile)
        assert len(report.ranking) == 3
        assert "noise" not in report.feature_names

    def test_partial_denial_keeps_full_features(self):
        """If only some phones deny a sensor, the feature still exists."""
        system = SORSystem(seed=62)
        rng = np.random.default_rng(62)
        shop = syracuse_coffee_shops(rng)[0]
        system.deploy_place(shop, shop_feature_pipeline())
        denier = system.deploy_phone(shop.place_id, budget=10)
        denier.phone.preferences.deny("microphone")
        system.deploy_phone(shop.place_id, budget=10)
        system.run()
        system.server.process_data()
        features = system.server.compute_all_features()
        assert "noise" in features[shop.place_id]
