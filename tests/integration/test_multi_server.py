"""Multiple sensing servers sharing one database (paper Section II:
"One or multiple sensing servers need to be deployed")."""

import numpy as np
import pytest

from repro.server import SORSystem
from repro.sim.scenarios import (
    customer_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
)


@pytest.fixture(scope="module")
def system():
    system = SORSystem(seed=33, num_servers=2)
    rng = np.random.default_rng(33)
    for shop in syracuse_coffee_shops(rng):
        system.deploy_place(shop, shop_feature_pipeline())
        for _ in range(6):
            system.deploy_phone(shop.place_id, budget=15)
    system.run()
    return system


class TestMultiServer:
    def test_two_servers_exist_and_share_database(self, system):
        assert len(system.servers) == 2
        assert system.servers[0].database is system.servers[1].database

    def test_places_split_across_servers(self, system):
        per_server = [len(server.apps.all_apps()) for server in system.servers]
        assert sum(per_server) == 3
        assert all(count >= 1 for count in per_server)

    def test_both_servers_received_traffic(self, system):
        per_host = system.network.stats.per_host_requests
        assert all(
            per_host.get(server.host, 0) > 0 for server in system.servers
        )

    def test_task_ids_globally_unique(self, system):
        tasks = system.server.database.table("tasks").select()
        ids = [task["task_id"] for task in tasks]
        assert len(ids) == len(set(ids)) == 18

    def test_each_server_processes_only_its_blobs(self, system):
        for server in system.servers:
            server.process_data()
        first, second = system.servers
        assert first.data_processor.blobs_decoded > 0
        assert second.data_processor.blobs_decoded > 0
        assert (
            first.data_processor.blobs_decoded
            + second.data_processor.blobs_decoded
            == 18
        )
        assert first.data_processor.blobs_rejected == 0
        assert second.data_processor.blobs_rejected == 0

    def test_rankings_reproduce_across_the_fleet(self, system):
        reports = system.process_and_rank("coffee_shop", customer_profiles())
        names = {pid: d.place.name for pid, d in system.places.items()}
        assert [names[p] for p in reports["David"].ranking.items] == [
            "Starbucks", "B&N Cafe", "Tim Hortons",
        ]
        assert [names[p] for p in reports["Emma"].ranking.items] == [
            "B&N Cafe", "Tim Hortons", "Starbucks",
        ]

    def test_ranker_on_any_server_sees_shared_features(self, system):
        system.process_and_rank("coffee_shop", customer_profiles())
        emma = next(p for p in customer_profiles() if p.name == "Emma")
        from_first = system.servers[0].ranker.rank("coffee_shop", emma)
        from_second = system.servers[1].ranker.rank("coffee_shop", emma)
        assert from_first.ranking == from_second.ranking
