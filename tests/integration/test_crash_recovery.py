"""Crash-recovery integration: kill the server mid-field-test, restart
from disk, and check durability's two promises — acknowledged state
survives, and retried un-acked envelopes do not double-apply."""

import pytest

from repro.sim.crash import CrashSpec, run_crash_scenario


class TestDurableCrash:
    def test_acked_state_survives_two_kills(self, tmp_path):
        report = run_crash_scenario(CrashSpec(), tmp_path)
        assert report.kills_executed == 2
        assert report.acked_schedules > 0
        assert report.acked_uploads > 0
        assert report.data_intact
        assert report.records_replayed > 0
        # One recovery at first boot plus one per restart.
        assert len(report.recovery_reports) == 3

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_intact_across_seeds(self, tmp_path, seed):
        report = run_crash_scenario(CrashSpec(seed=seed), tmp_path)
        assert report.data_intact

    def test_torn_tail_kill_truncates_and_recovers(self, tmp_path):
        report = run_crash_scenario(CrashSpec(), tmp_path)
        # The first kill dies mid-commit: an uncommitted transaction and
        # half a frame on disk. Recovery must have discarded both.
        torn = [r for r in report.recovery_reports if r.torn_tail_bytes_discarded]
        assert torn
        assert any(
            r.incomplete_transactions_discarded for r in report.recovery_reports
        )
        assert report.data_intact

    def test_checkpoints_bound_replay_work(self, tmp_path):
        eager = run_crash_scenario(
            CrashSpec(checkpoint_every_records=5, seed=4), tmp_path
        )
        assert eager.data_intact
        # With frequent compaction the later recoveries boot from a
        # checkpoint instead of replaying all of history.
        assert any(r.checkpoint_seq > 0 for r in eager.recovery_reports)
        checkpoints = eager.metrics.counter("sor_db_checkpoints_total")
        assert checkpoints.value() > 0

    def test_kills_plus_network_loss_stay_intact(self, tmp_path):
        # The nastiest combination: the server dies while the network is
        # also dropping 20% of each leg. Retries cross restart boundaries,
        # so deduplication must come from the durable idempotency table.
        report = run_crash_scenario(
            CrashSpec(request_drop=0.2, response_drop=0.2, seed=3), tmp_path
        )
        assert report.kills_executed == 2
        assert report.data_intact
        assert report.duplicate_tasks == 0
        assert report.duplicate_uploads == 0

    def test_recovery_metrics_emitted(self, tmp_path):
        report = run_crash_scenario(CrashSpec(), tmp_path)
        replayed = report.metrics.counter("sor_db_recovery_replayed_records")
        assert replayed.value() == report.records_replayed
        wal_bytes = report.metrics.counter("sor_db_wal_bytes")
        assert wal_bytes.value() > 0
        histogram = report.metrics.histogram("sor_db_recovery_seconds")
        assert histogram.count() == len(report.recovery_reports)


class TestNonDurableContrast:
    def test_without_durability_acked_state_is_lost(self, tmp_path):
        report = run_crash_scenario(CrashSpec(durability=False), tmp_path)
        assert report.kills_executed == 2
        assert report.acked_schedules > 0
        assert report.lost_acked_schedules > 0  # the restart came up empty
        assert not report.data_intact
        assert report.records_replayed == 0
        assert report.recovery_reports == []
