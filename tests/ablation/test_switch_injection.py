"""Switch-injection uniformity: every registry switch reaches its
constructor.

Each leave-one-out configuration is applied to the real constructors
through :mod:`repro.ablation.apply` and probed back out via an
*observable effect* (the scheduler's backend, the ranker's attached
cache, the database's durability manager, the admission executor, the
resilient client factory). If a constructor ever stops honoring a knob
— or a new switch is registered without plumbing — the round trip
breaks here instead of the ablation silently measuring nothing.
"""

from __future__ import annotations

import pytest

from repro.ablation import (
    default_registry,
    effective_greedy_values,
    effective_server_values,
    effective_stochastic_values,
    effective_system_values,
    greedy_kwargs,
    server_kwargs,
    stochastic_greedy_kwargs,
    system_kwargs,
)
from repro.common.errors import AblationError
from repro.core.scheduling import GreedyScheduler
from repro.server.system import SORSystem

GREEDY_SWITCHES = ("backend", "lazy_greedy")
STOCHASTIC_SWITCHES = ("stochastic",)
SERVER_SWITCHES = ("backend", "ranking_cache", "durability", "concurrency")
SYSTEM_SWITCHES = SERVER_SWITCHES + ("resilient",)


def _configs():
    return default_registry().enumerate_configs()


@pytest.mark.parametrize("config", _configs(), ids=lambda c: c.name)
class TestEveryConfigReachesConstructors:
    def test_greedy_scheduler_round_trip(self, config):
        scheduler = GreedyScheduler(**greedy_kwargs(config.values))
        effective = effective_greedy_values(scheduler)
        for name in GREEDY_SWITCHES:
            assert effective[name] == config.values[name], name

    def test_stochastic_cell_round_trip(self, config):
        scheduler = GreedyScheduler(**stochastic_greedy_kwargs(config.values))
        effective = effective_stochastic_values(scheduler)
        for name in STOCHASTIC_SWITCHES:
            assert effective[name] == config.values[name], name

    def test_sor_system_round_trip(self, config, tmp_path):
        system = SORSystem(
            seed=2014,
            **system_kwargs(config.values, durability_dir=tmp_path),
        )
        try:
            effective = effective_system_values(system)
            for name in SYSTEM_SWITCHES:
                assert effective[name] == config.values[name], name
        finally:
            system.server.close()
            if system.server.database.durability is not None:
                system.server.database.durability.close()


class TestRegistryCoverage:
    def test_every_switch_probed_by_some_round_trip(self):
        """A new switch must be added to a probe set here and in apply."""
        probed = (
            set(GREEDY_SWITCHES)
            | set(STOCHASTIC_SWITCHES)
            | set(SYSTEM_SWITCHES)
        )
        assert set(default_registry().names()) <= probed

    def test_every_switch_changes_an_effective_value(self, tmp_path):
        """Ablating any switch flips at least one probed value."""
        registry = default_registry()
        baseline = registry.baseline_values()

        def snapshot(values, directory):
            system = SORSystem(
                seed=2014, **system_kwargs(values, durability_dir=directory)
            )
            try:
                effective = effective_system_values(system)
                scheduler = GreedyScheduler(**greedy_kwargs(values))
                effective.update(effective_greedy_values(scheduler))
                cell = GreedyScheduler(**stochastic_greedy_kwargs(values))
                effective.update(effective_stochastic_values(cell))
                return effective
            finally:
                system.server.close()
                if system.server.database.durability is not None:
                    system.server.database.durability.close()

        base_dir = tmp_path / "base"
        base_dir.mkdir()
        base_effective = snapshot(baseline, base_dir)
        for index, switch in enumerate(registry):
            values = dict(baseline)
            values[switch.name] = switch.ablated
            directory = tmp_path / f"cfg{index}"
            directory.mkdir()
            effective = snapshot(values, directory)
            assert effective != base_effective, switch.name
            assert effective[switch.name] == switch.ablated


class TestApplyHelpers:
    def test_bad_lazy_mode_raises(self):
        with pytest.raises(AblationError, match="lazy_greedy"):
            greedy_kwargs({"lazy_greedy": "eager"})

    def test_durability_requires_directory(self):
        with pytest.raises(AblationError, match="durability_dir"):
            server_kwargs({"durability": "on"})

    def test_empty_values_mirror_constructor_defaults(self):
        """With no switches set, apply adds nothing the constructors
        would not default to themselves (durability and concurrency stay
        absent, matching the production ``SensingServer`` defaults)."""
        kwargs = system_kwargs({})
        assert kwargs == {
            "scheduler_backend": "numpy",
            "ranking_cache": True,
            "resilient": True,
        }
        assert greedy_kwargs({}) == {"backend": "numpy", "lazy": True}
        assert stochastic_greedy_kwargs({}) == {
            "backend": "numpy",
            "mode": "stochastic",
            "seed": 2014,
        }

    def test_bad_stochastic_value_raises(self):
        with pytest.raises(AblationError, match="stochastic"):
            stochastic_greedy_kwargs({"stochastic": "maybe"})

    def test_ablated_stochastic_follows_lazy_greedy(self):
        """The no-stochastic twin runs the exact mode lazy_greedy picks."""
        kwargs = stochastic_greedy_kwargs(
            {"stochastic": "off", "lazy_greedy": "argmax"}
        )
        assert kwargs["mode"] == "argmax"
        assert stochastic_greedy_kwargs({"stochastic": "off"})["mode"] == "lazy"
