"""Tests for the ablation registry, runner, and report.

The runner tests use *synthetic* benches with hand-picked effect sizes
so the expected importance ranking is known exactly — the point is the
harness's arithmetic and invariants, not the real system's performance
(the real slate runs in the CI ``ablation-smoke`` job and in
``tests/ablation/test_switch_injection.py``).
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.ablation import (
    AblationSpec,
    BenchResult,
    Switch,
    SwitchRegistry,
    baseline_bench_json,
    default_registry,
    effect_ratio,
    render,
    run_ablation,
    to_bench_json,
)
from repro.common.errors import AblationError
from repro.obs import MetricsRegistry


def _load_compare_bench():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
    spec = importlib.util.spec_from_file_location("compare_bench_ablation", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load_compare_bench()


# ----------------------------------------------------------------------
# fixtures: a synthetic three-switch world with known effect sizes
# ----------------------------------------------------------------------
def synthetic_registry() -> SwitchRegistry:
    registry = SwitchRegistry()
    registry.register(
        Switch(
            name="fast",
            description="a component worth 4x",
            baseline="on",
            ablated="off",
            primary_metric="t_seconds",
            behavior_preserving=True,
            gate=True,
            gate_floor=2.0,
            gate_tolerance_pct=40.0,
        )
    )
    registry.register(
        Switch(
            name="costly",
            description="a component that halves throughput",
            baseline="on",
            ablated="off",
            primary_metric="delivered",
            direction="higher",
            gate=True,
            gate_floor=1.5,
            gate_tolerance_pct=20.0,
        )
    )
    registry.register(
        Switch(
            name="useless",
            description="a component that does nothing",
            baseline="on",
            ablated="off",
            primary_metric="t_seconds",
        )
    )
    return registry


def synthetic_bench(values, *, seed, repeat, scale):
    """Deterministic metrics: fast=off ⇒ 4x slower; costly=on ⇒ 2x rows."""
    seconds = 1.0 * (4.0 if values.get("fast", "on") == "off" else 1.0)
    delivered = 100.0 * (2.0 if values.get("costly", "on") == "on" else 1.0)
    return BenchResult(
        metrics={"t_seconds": seconds, "delivered": delivered},
        digests={"work": "identical-everywhere"},
    )


SYNTHETIC_BENCHES = {"synthetic": synthetic_bench}


def run_synthetic(registry=None, spec=None, benches=None):
    return run_ablation(
        spec or AblationSpec(seed=7, repeat=1),
        registry=registry or synthetic_registry(),
        benches=benches or SYNTHETIC_BENCHES,
        metrics=MetricsRegistry(),
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_enumerates_baseline_plus_one_per_switch(self):
        registry = default_registry()
        configs = registry.enumerate_configs()
        assert len(configs) == len(registry) + 1
        assert configs[0].name == "baseline"
        assert configs[0].ablated is None
        ablated = [config.ablated for config in configs[1:]]
        assert ablated == registry.names()
        for config in configs[1:]:
            switch = registry.get(config.ablated)
            assert config.values[switch.name] == switch.ablated
            others = {
                name: value
                for name, value in config.values.items()
                if name != switch.name
            }
            baseline = registry.baseline_values()
            assert others == {
                name: baseline[name] for name in baseline if name != switch.name
            }

    def test_duplicate_registration_raises(self):
        registry = synthetic_registry()
        with pytest.raises(AblationError, match="already registered"):
            registry.register(registry.get("fast"))

    def test_unknown_switch_raises_with_known_names(self):
        with pytest.raises(AblationError, match="unknown switch"):
            default_registry().get("flux_capacitor")

    def test_subset_preserves_order_and_rejects_unknown(self):
        registry = default_registry()
        subset = registry.subset(["ranking_cache", "backend"])
        assert subset.names() == ["backend", "ranking_cache"]
        with pytest.raises(AblationError, match="unknown switch"):
            registry.subset(["backend", "nope"])

    def test_inverted_swaps_exactly_one_switch(self):
        registry = synthetic_registry()
        inverted = registry.inverted("fast")
        swapped = inverted.get("fast")
        original = registry.get("fast")
        assert swapped.baseline == original.ablated
        assert swapped.ablated == original.baseline
        assert swapped.description.startswith("INVERTED")
        assert inverted.get("costly") is registry.get("costly")

    def test_empty_enumeration_raises(self):
        with pytest.raises(AblationError, match="empty switch registry"):
            SwitchRegistry().enumerate_configs()

    def test_switch_validation(self):
        with pytest.raises(AblationError, match="direction"):
            Switch(
                name="x",
                description="",
                baseline="a",
                ablated="b",
                primary_metric="m",
                direction="sideways",
            )
        with pytest.raises(AblationError, match="equal"):
            Switch(
                name="x",
                description="",
                baseline="same",
                ablated="same",
                primary_metric="m",
            )
        with pytest.raises(AblationError, match="bad switch name"):
            Switch(
                name="not a name",
                description="",
                baseline="a",
                ablated="b",
                primary_metric="m",
            )


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_known_effects_rank_deterministically(self):
        report = run_synthetic()
        names = [entry.name for entry in report.importance]
        # |ln 4| > |ln 2| > |ln 1|: fast, costly, useless — exactly.
        assert names == ["fast", "costly", "useless"]
        by_name = {entry.name: entry for entry in report.importance}
        assert by_name["fast"].ratio == pytest.approx(4.0)
        assert by_name["fast"].kind == "speedup"
        assert by_name["costly"].ratio == pytest.approx(2.0)
        assert by_name["costly"].kind == "speedup"
        assert by_name["useless"].ratio == pytest.approx(1.0)
        assert by_name["useless"].kind == "neutral"
        assert by_name["useless"].impact == pytest.approx(0.0)

    def test_useless_component_always_ranks_last(self):
        report = run_synthetic()
        assert report.importance[-1].name == "useless"

    def test_two_runs_identical(self):
        first = run_synthetic()
        second = run_synthetic()
        assert [e.name for e in first.importance] == [
            e.name for e in second.importance
        ]
        assert [e.ratio for e in first.importance] == [
            e.ratio for e in second.importance
        ]

    def test_cost_switch_reports_cost_kind(self):
        registry = SwitchRegistry()
        registry.register(
            Switch(
                name="overhead",
                description="pure tax",
                baseline="on",
                ablated="off",
                primary_metric="t_seconds",
            )
        )

        def bench(values, *, seed, repeat, scale):
            seconds = 2.0 if values["overhead"] == "on" else 1.0
            return BenchResult(metrics={"t_seconds": seconds})

        report = run_ablation(
            AblationSpec(seed=1, repeat=1),
            registry=registry,
            benches={"b": bench},
            metrics=MetricsRegistry(),
        )
        entry = report.importance[0]
        assert entry.kind == "cost"
        assert entry.ratio == pytest.approx(0.5)
        assert entry.impact == pytest.approx(abs(math.log(0.5)))

    def test_components_subset_limits_matrix(self):
        report = run_synthetic(spec=AblationSpec(seed=7, repeat=1, components=("fast",)))
        assert len(report.results) == 2
        assert [entry.name for entry in report.importance] == ["fast"]

    def test_behavior_digest_divergence_raises(self):
        def treacherous(values, *, seed, repeat, scale):
            result = synthetic_bench(values, seed=seed, repeat=repeat, scale=scale)
            result.digests["work"] = f"depends-on-{values['fast']}"
            return result

        with pytest.raises(AblationError, match="behavior-preserving"):
            run_synthetic(benches={"synthetic": treacherous})

    def test_metric_collision_between_benches_raises(self):
        benches = {
            "one": synthetic_bench,
            "two": lambda values, *, seed, repeat, scale: BenchResult(
                metrics={"t_seconds": 1.0}
            ),
        }
        with pytest.raises(AblationError, match="re-emits metric"):
            run_synthetic(benches=benches)

    def test_missing_primary_metric_raises(self):
        def sparse(values, *, seed, repeat, scale):
            return BenchResult(metrics={"t_seconds": 1.0})

        with pytest.raises(AblationError, match="primary metric"):
            run_synthetic(benches={"sparse": sparse})

    def test_repeat_must_be_positive(self):
        with pytest.raises(AblationError, match="repeat"):
            AblationSpec(repeat=0)

    def test_effect_ratio_semantics(self):
        assert effect_ratio("lower", 1.0, 4.0) == pytest.approx(4.0)
        assert effect_ratio("higher", 4.0, 1.0) == pytest.approx(4.0)
        assert effect_ratio("lower", 4.0, 1.0) == pytest.approx(0.25)
        with pytest.raises(AblationError, match="positive"):
            effect_ratio("lower", 0.0, 1.0)

    def test_emits_sor_ablation_metrics(self):
        metrics = MetricsRegistry()
        run_ablation(
            AblationSpec(seed=7, repeat=1),
            registry=synthetic_registry(),
            benches=SYNTHETIC_BENCHES,
            metrics=metrics,
        )
        assert metrics.counter(
            "sor_ablation_configs_total", ""
        ).value() == 4.0
        gauge = metrics.gauge(
            "sor_ablation_effect_ratio", "", labels=("switch",)
        )
        assert gauge.value(switch="fast") == pytest.approx(4.0)
        bench_gauge = metrics.gauge(
            "sor_ablation_bench_seconds", "", labels=("config", "bench")
        )
        assert bench_gauge.value(config="baseline", bench="synthetic") >= 0.0


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
class TestReport:
    def test_bench_json_round_trips_through_compare_bench(self, tmp_path):
        report = run_synthetic()
        document = to_bench_json(report)
        path = tmp_path / "BENCH_ablation.json"
        path.write_text(json.dumps(document))
        loaded = compare_bench.load_metrics(path, 20.0)
        # Only gated switches become metrics; all read back exactly.
        assert set(loaded) == {"ablation_effect_fast", "ablation_effect_costly"}
        assert loaded["ablation_effect_fast"]["value"] == pytest.approx(4.0)
        assert loaded["ablation_effect_fast"]["direction"] == "higher"
        assert loaded["ablation_effect_fast"]["tolerance_pct"] == 40.0

    def test_fresh_run_passes_gate_against_committed_floors(self, tmp_path):
        report = run_synthetic()
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(baseline_bench_json(report)))
        fresh_path.write_text(json.dumps(to_bench_json(report)))
        _, failures = compare_bench.compare(
            compare_bench.load_metrics(baseline_path, 20.0),
            compare_bench.load_metrics(fresh_path, 20.0),
        )
        assert failures == []

    def test_importance_inversion_fails_gate(self, tmp_path):
        honest = run_synthetic()
        inverted = run_synthetic(registry=synthetic_registry().inverted("fast"))
        baseline_path = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        baseline_path.write_text(json.dumps(baseline_bench_json(honest)))
        fresh_path.write_text(json.dumps(to_bench_json(inverted)))
        _, failures = compare_bench.compare(
            compare_bench.load_metrics(baseline_path, 20.0),
            compare_bench.load_metrics(fresh_path, 20.0),
        )
        # fast's measured ratio collapses to 1/4 — far below its 2.0
        # floor even with 40% tolerance.
        assert any("ablation_effect_fast" in failure for failure in failures)

    def test_render_formats(self):
        report = run_synthetic()
        table = render(report, "table")
        assert "component importance" in table
        assert "fast" in table
        payload = json.loads(render(report, "json"))
        assert payload["seed"] == 7
        assert [e["name"] for e in payload["importance"]] == [
            "fast",
            "costly",
            "useless",
        ]
        with pytest.raises(ValueError, match="unknown"):
            render(report, "yaml")

    def test_ranking_listed_in_bench_json(self):
        report = run_synthetic()
        assert to_bench_json(report)["ranking"] == ["fast", "costly", "useless"]
