"""Server-side idempotent delivery: replayed envelopes must not re-apply."""

import numpy as np

from repro.common.clock import ManualClock
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import Envelope, HttpRequest, MessageType
from repro.net.transport import Network
from repro.obs import MetricsRegistry
from repro.server import SensingServer
from repro.server.app_manager import Application

PLACE = LatLon(43.05, -76.15)


def make_server():
    network = Network(rng=np.random.default_rng(0))
    registry = MetricsRegistry()
    server = SensingServer(
        "server", network, ManualClock(start=10.0), metrics=registry
    )
    server.register_user("alice", "Alice", "tok-a")
    server.create_application(
        Application(
            app_id="app-1",
            creator="owner",
            place_id="place-1",
            place_name="Place One",
            category="coffee_shop",
            location=PLACE,
            script="return get_temperature_readings(2, 1.0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    return server, network, registry


def post(network, envelope):
    response = network.send(
        HttpRequest("POST", "server", "/sor", envelope.to_bytes())
    )
    assert response.ok
    return Envelope.from_bytes(response.body)


def participate_envelope(key=None):
    envelope = Envelope(
        MessageType.PARTICIPATE,
        sender="phone-1",
        recipient="server",
        payload={
            "user_id": "alice",
            "token": "tok-a",
            "app_id": "app-1",
            "place_id": "place-1",
            "latitude": PLACE.latitude,
            "longitude": PLACE.longitude,
            "budget": 5,
        },
    )
    return envelope.with_idempotency_key(key)


def upload_envelope(task_id):
    return Envelope(
        MessageType.SENSED_DATA,
        sender="phone-1",
        recipient="server",
        payload={
            "task_id": task_id,
            "token": "tok-a",
            "status": "finished",
            "error": "",
            "bursts": [
                {
                    "sensor": "temperature",
                    "t": 100.0,
                    "dt": 1.0,
                    "values": [70.0, 72.0],
                }
            ],
        },
    ).with_idempotency_key()


class TestParticipateReplay:
    def test_replayed_participate_creates_one_task(self):
        server, network, registry = make_server()
        envelope = participate_envelope("scan-1")
        first = post(network, envelope)
        second = post(network, envelope)  # e.g. the first ACK leg was lost
        assert first.message_type is MessageType.SCHEDULE
        assert second.payload == first.payload  # same schedule replayed
        assert server.database.table("tasks").count() == 1
        duplicates = registry.counter(
            "sor_server_duplicate_envelopes_total", labels=("type",)
        )
        assert duplicates.value(type="participate") == 1

    def test_distinct_scan_nonces_create_distinct_tasks(self):
        """A deliberate re-scan uses a fresh nonce and must NOT dedupe,
        even though the payload content is identical."""
        server, network, _ = make_server()
        first = post(network, participate_envelope("scan-1"))
        second = post(network, participate_envelope("scan-2"))
        assert first.payload["task_id"] != second.payload["task_id"]
        assert server.database.table("tasks").count() == 2


class TestUploadReplay:
    def test_replayed_upload_ingests_one_row_and_acks_both(self):
        server, network, _ = make_server()
        task_id = post(network, participate_envelope("scan-1")).payload["task_id"]
        envelope = upload_envelope(task_id)
        first = post(network, envelope)
        second = post(network, envelope)
        assert first.message_type is MessageType.ACK
        assert second.message_type is MessageType.ACK  # phone still gets its ack
        assert server.database.table("raw_data").count() == 1

    def test_unstamped_envelopes_are_not_deduped(self):
        server, network, registry = make_server()
        task_id = post(network, participate_envelope("scan-1")).payload["task_id"]
        plain = Envelope(
            MessageType.SENSED_DATA,
            sender="phone-1",
            recipient="server",
            payload=upload_envelope(task_id).payload,
        )
        post(network, plain)
        post(network, plain)
        # No key → the server cannot tell a replay from a new upload.
        assert server.database.table("raw_data").count() == 2
        duplicates = registry.counter(
            "sor_server_duplicate_envelopes_total", labels=("type",)
        )
        assert duplicates.value(type="sensed_data") == 0
