"""Tests for the versioned ranking cache, batch rank API and endpoint."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import RankingError
from repro.db import (
    Database,
    DurabilityConfig,
    and_,
    eq,
    open_durable_database,
)
from repro.net import (
    CloudMessenger,
    Envelope,
    HttpRequest,
    MessageType,
    NetworkConditions,
)
from repro.net.transport import Network
from repro.obs import MetricsRegistry
from repro.core.ranking import MAX, MIN, FeaturePreference, PreferenceProfile
from repro.server.ranker_service import (
    PersonalizableRanker,
    RankingCache,
    bump_data_version,
    get_data_version,
    profile_from_dict,
    profile_to_dict,
)
from repro.server.schemas import create_all_tables

FEATURES = {
    "p1": {"temperature": 70.0, "noise": 40.0},
    "p2": {"temperature": 75.0, "noise": 30.0},
    "p3": {"temperature": 65.0, "noise": 50.0},
}


def seed_database(features=FEATURES, category="coffee_shop"):
    database = Database(name="test", metrics=MetricsRegistry())
    create_all_tables(database)
    write_features(database, features, category)
    return database


def write_features(database, features, category="coffee_shop"):
    table = database.table("feature_data")
    for place_id, values in features.items():
        for feature, value in values.items():
            table.insert(
                {
                    "place_id": place_id,
                    "category": category,
                    "feature": feature,
                    "value": value,
                    "computed_at": 0.0,
                }
            )
    bump_data_version(database, category)


def profile(name="David", **prefs):
    if not prefs:
        prefs = {"temperature": (70.0, 5), "noise": (MIN, 3)}
    return PreferenceProfile(
        name,
        {
            feature: FeaturePreference(preferred, weight)
            for feature, (preferred, weight) in prefs.items()
        },
    )


def make_ranker(database=None, capacity=8):
    database = database if database is not None else seed_database()
    registry = MetricsRegistry()
    cache = RankingCache(capacity=capacity, metrics=registry)
    ranker = PersonalizableRanker(database, cache=cache, metrics=registry)
    return ranker, cache, database


def assert_reports_equal(left, right):
    """Bitwise equality of two ranking reports."""
    assert left.profile_name == right.profile_name
    assert left.category == right.category
    assert left.ranking.items == right.ranking.items
    assert left.feature_names == right.feature_names
    assert left.place_ids == right.place_ids
    assert np.array_equal(left.feature_matrix, right.feature_matrix)
    assert [r.items for r in left.individual] == [
        r.items for r in right.individual
    ]
    assert left.weights == right.weights
    assert left.weighted_footrule == right.weighted_footrule
    assert left.weighted_kemeny == right.weighted_kemeny


class TestUncoveredFeatureRegression:
    def test_profile_missing_a_common_feature_ranks(self):
        """Regression: an uncovered common feature used to raise."""
        ranker, _, _ = make_ranker()
        only_temperature = profile("Solo", temperature=(70.0, 5))
        report = ranker.rank("coffee_shop", only_temperature)
        assert report.feature_names == ["temperature"]
        assert report.ranking.items[0] == "p1"

    def test_uncovered_equals_explicit_zero_weight(self):
        ranker, _, _ = make_ranker()
        uncovered = profile("A", temperature=(70.0, 5))
        zeroed = profile("B", temperature=(70.0, 5), noise=(MIN, 0))
        left = ranker.rank("coffee_shop", uncovered)
        right = ranker.rank("coffee_shop", zeroed)
        assert left.ranking.items == right.ranking.items
        assert left.feature_names == right.feature_names == ["temperature"]

    def test_profile_with_no_positive_common_weight_rejected(self):
        ranker, _, _ = make_ranker()
        unrelated = profile("Ghost", wifi=(MAX, 5))
        with pytest.raises(RankingError):
            ranker.rank("coffee_shop", unrelated)


class TestRankingCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(RankingError):
            RankingCache(capacity=0, metrics=MetricsRegistry())

    def test_miss_then_hit(self):
        ranker, cache, _ = make_ranker()
        first = ranker.rank("coffee_shop", profile())
        second = ranker.rank("coffee_shop", profile())
        assert second is first  # served from the cache, not recomputed
        assert (cache.hits, cache.misses) == (1, 1)

    def test_metrics_counters_track_attributes(self):
        registry = MetricsRegistry()
        cache = RankingCache(capacity=1, metrics=registry)
        ranker = PersonalizableRanker(
            seed_database(), cache=cache, metrics=registry
        )
        ranker.rank("coffee_shop", profile("A"))
        ranker.rank("coffee_shop", profile("A"))
        assert registry.get("sor_ranking_cache_hits_total").value() == 1
        assert registry.get("sor_ranking_cache_misses_total").value() == 1
        assert registry.get("sor_ranking_cache_evictions_total").value() == 0

    def test_lru_eviction_at_capacity(self):
        ranker, cache, _ = make_ranker(capacity=1)
        david = profile("David")
        emma = profile("Emma", temperature=(65.0, 2), noise=(MIN, 5))
        ranker.rank("coffee_shop", david)
        ranker.rank("coffee_shop", emma)  # evicts David's entry
        assert len(cache) == 1
        assert cache.evictions == 1
        ranker.rank("coffee_shop", david)  # miss again: was evicted
        assert cache.misses == 3
        assert cache.hits == 0

    def test_clear_keeps_counters(self):
        ranker, cache, _ = make_ranker()
        ranker.rank("coffee_shop", profile())
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        ranker.rank("coffee_shop", profile())
        assert cache.misses == 2


class TestVersioning:
    def test_starts_at_zero_without_table(self):
        database = Database(name="bare", metrics=MetricsRegistry())
        assert get_data_version(database, "coffee_shop") == 0

    def test_bump_creates_table_and_increments(self):
        database = Database(name="bare", metrics=MetricsRegistry())
        assert bump_data_version(database, "coffee_shop") == 1
        assert bump_data_version(database, "coffee_shop") == 2
        assert get_data_version(database, "coffee_shop") == 2
        assert get_data_version(database, "trail") == 0

    def test_bump_invalidates_cached_rankings(self):
        ranker, cache, database = make_ranker()
        ranker.rank("coffee_shop", profile())
        bump_data_version(database, "coffee_shop")
        report = ranker.rank("coffee_shop", profile())
        assert cache.hits == 0
        assert cache.misses == 2
        assert report.ranking.items  # recomputed fine on the new version

    def test_stale_entry_never_served_after_data_change(self):
        ranker, _, database = make_ranker()
        before = ranker.rank("coffee_shop", profile())
        database.table("feature_data").update(
            and_(eq("place_id", "p3"), eq("feature", "noise")), {"value": 0.0}
        )
        bump_data_version(database, "coffee_shop")
        after = ranker.rank("coffee_shop", profile())
        # Recomputed on the new data: p3's noise of 0 is now best.
        noise = after.feature_names.index("noise")
        assert after.individual[noise].items[0] == "p3"
        assert before.individual[noise].items[0] == "p2"
        assert after.weighted_footrule != before.weighted_footrule

    def test_version_survives_durable_restart(self, tmp_path):
        config = DurabilityConfig(directory=tmp_path)
        database, _ = open_durable_database(config)
        create_all_tables(database)
        bump_data_version(database, "coffee_shop")
        bump_data_version(database, "coffee_shop")
        database.durability.close()  # simulated kill, no graceful flush
        reopened, _ = open_durable_database(config)
        assert get_data_version(reopened, "coffee_shop") == 2
        reopened.durability.close()


class TestBatchRanking:
    def profiles(self):
        return [
            profile("David", temperature=(70.0, 5), noise=(MIN, 3)),
            profile("Emma", temperature=(65.0, 2), noise=(MIN, 5)),
            profile("Frank", temperature=(75.0, 4)),
        ]

    def test_rank_many_matches_uncached_rank_bitwise(self):
        ranker, _, database = make_ranker()
        batch = ranker.rank_many("coffee_shop", self.profiles())
        plain = PersonalizableRanker(database, metrics=MetricsRegistry())
        for person in self.profiles():
            assert_reports_equal(
                batch[person.name], plain.rank("coffee_shop", person)
            )

    def test_rank_many_preserves_profile_order(self):
        ranker, _, _ = make_ranker()
        batch = ranker.rank_many("coffee_shop", self.profiles())
        assert list(batch) == ["David", "Emma", "Frank"]

    def test_rank_many_serves_cached_profiles(self):
        ranker, cache, _ = make_ranker()
        ranker.rank("coffee_shop", profile("David"))
        ranker.rank_many(
            "coffee_shop", [profile("David"), profile("Emma", wifi=(MAX, 1),
                                                      temperature=(70.0, 2))]
        )
        assert cache.hits == 1
        assert cache.misses == 2

    def test_rank_many_needs_two_places(self):
        database = Database(name="one", metrics=MetricsRegistry())
        create_all_tables(database)
        write_features(database, {"p1": {"temperature": 70.0}})
        ranker = PersonalizableRanker(database, metrics=MetricsRegistry())
        with pytest.raises(RankingError):
            ranker.rank_many("coffee_shop", [profile()])


class TestProfileWireCodec:
    def test_roundtrip(self):
        original = profile("David", temperature=(70.0, 5), noise=(MIN, 3),
                           wifi=(MAX, 1))
        revived = profile_from_dict(profile_to_dict(original))
        assert revived.name == original.name
        assert revived.fingerprint() == original.fingerprint()

    @pytest.mark.parametrize(
        "payload",
        [
            {"name": "x"},
            {"name": "x", "preferences": {}},
            {"name": 3, "preferences": {"t": {"preferred": 1.0, "weight": 1}}},
            {"name": "x", "preferences": {"t": {"preferred": "best",
                                                "weight": 1}}},
            {"name": "x", "preferences": {"t": {"preferred": 1.0,
                                                "weight": True}}},
            {"name": "x", "preferences": {"t": {"preferred": 1.0,
                                                "weight": "5"}}},
        ],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(RankingError):
            profile_from_dict(payload)


class TestRankQueryEndpoint:
    def make_server(self):
        from repro.server import SensingServer

        network = Network(
            conditions=NetworkConditions(drop_probability=0.0),
            rng=np.random.default_rng(0),
        )
        server = SensingServer(
            "server",
            network,
            ManualClock(start=10.0),
            gcm=CloudMessenger(),
            metrics=MetricsRegistry(),
        )
        write_features(server.database, FEATURES)
        return server, network

    def post(self, network, payload):
        envelope = Envelope(
            MessageType.RANK_QUERY, "client-1", "server", payload
        )
        response = network.send(
            HttpRequest("POST", "server", "/sor", envelope.to_bytes())
        )
        assert response.ok
        return Envelope.from_bytes(response.body)

    def test_round_trip(self):
        server, network = self.make_server()
        reply = self.post(
            network,
            {
                "category": "coffee_shop",
                "profiles": [profile_to_dict(profile("David"))],
            },
        )
        assert reply.message_type is MessageType.RANKING
        assert reply.payload["category"] == "coffee_shop"
        assert reply.payload["data_version"] == 1
        (entry,) = reply.payload["rankings"]
        assert entry["profile"] == "David"
        expected = server.ranker.rank("coffee_shop", profile("David"))
        assert entry["places"] == list(expected.ranking.items)
        assert entry["weighted_footrule"] == expected.weighted_footrule

    def test_batch_reply_in_profile_order(self):
        _, network = self.make_server()
        reply = self.post(
            network,
            {
                "category": "coffee_shop",
                "profiles": [
                    profile_to_dict(profile("David")),
                    profile_to_dict(
                        profile("Emma", temperature=(65.0, 2), noise=(MIN, 5))
                    ),
                ],
            },
        )
        assert [r["profile"] for r in reply.payload["rankings"]] == [
            "David", "Emma",
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            {"profiles": []},
            {"category": "coffee_shop"},
            {"category": "coffee_shop", "profiles": []},
            {"category": "coffee_shop", "profiles": [{"name": "x"}]},
            {"category": "ghost_town", "profiles": None},
        ],
    )
    def test_malformed_is_error(self, payload):
        _, network = self.make_server()
        reply = self.post(network, payload)
        assert reply.message_type is MessageType.ERROR

    def test_unknown_category_is_error(self):
        _, network = self.make_server()
        reply = self.post(
            network,
            {
                "category": "ghost_town",
                "profiles": [profile_to_dict(profile("David"))],
            },
        )
        assert reply.message_type is MessageType.ERROR
        assert "two places" in reply.payload["reason"]


class TestDataProcessorBumpsVersion:
    def test_compute_features_bumps_every_write(self):
        from tests.server.test_server_endpoint import make_server, participate

        server, network, *_ = make_server()
        task_id = participate(network).payload["task_id"]
        upload = Envelope(
            MessageType.SENSED_DATA,
            sender="phone-1",
            recipient="server",
            payload={
                "task_id": task_id,
                "token": "tok-a",
                "status": "finished",
                "error": "",
                "bursts": [
                    {
                        "sensor": "temperature",
                        "t": 100.0,
                        "dt": 1.0,
                        "values": [70.0, 72.0],
                    }
                ],
            },
        )
        response = network.send(
            HttpRequest("POST", "server", "/sor", upload.to_bytes())
        )
        assert response.ok
        assert get_data_version(server.database, "coffee_shop") == 0
        server.process_data()
        server.compute_all_features()
        assert get_data_version(server.database, "coffee_shop") == 1
        server.compute_all_features()
        assert get_data_version(server.database, "coffee_shop") == 2
