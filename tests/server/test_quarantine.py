"""Range-checked ingestion: physically impossible readings are quarantined.

NaN, ±inf and wildly out-of-spec values must never reach the readings
table (a single NaN poisons every downstream mean), but they also must
not be silently dropped — each lands in the ``quarantine`` table with the
reason recorded, and ``sor_server_quarantined_readings_total`` counts it.
"""

import math

import pytest

from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.db import Database, eq
from repro.net import Envelope, MessageType
from repro.obs import MetricsRegistry
from repro.server.app_manager import Application, ApplicationManager
from repro.server.data_processor import DataProcessor
from repro.server.participation import ParticipationManager
from repro.server.schemas import create_all_tables
from repro.server.user_manager import UserInfoManager

PLACE = LatLon(43.05, -76.15)


@pytest.fixture
def world(clock):
    database = Database()
    create_all_tables(database)
    users = UserInfoManager(database, clock)
    users.register("alice", "Alice", "tok-a")
    apps = ApplicationManager(database)
    apps.create(
        Application(
            app_id="app-1",
            creator="o",
            place_id="place-1",
            place_name="P",
            category="c",
            location=PLACE,
            script="return get_temperature_readings(1, 0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    participation = ParticipationManager(database, users, apps, clock)
    clock.advance(10.0)
    task_id = participation.create_task(
        app_id="app-1", user_id="alice", token="tok-a",
        phone_host="phone-1", location=PLACE, budget=3,
    )
    registry = MetricsRegistry()
    processor = DataProcessor(database, apps, clock, metrics=registry)
    return database, processor, task_id, registry


def store(database, task_id, bursts):
    body = Envelope(
        MessageType.SENSED_DATA,
        "phone-1",
        "server",
        {"task_id": task_id, "bursts": bursts},
    ).to_bytes()
    database.table("raw_data").insert(
        {"task_id": task_id, "received_at": 0.0, "body": body, "processed": False}
    )


def burst(sensor, values, t=1.0, dt=0.0):
    return {"sensor": sensor, "t": t, "dt": dt, "values": values}


class TestQuarantine:
    def test_nan_reading_is_quarantined_not_ingested(self, world):
        database, processor, task_id, registry = world
        store(database, task_id, [burst("temperature", [70.0, math.nan])])
        processor.process_pending()
        assert database.table("readings").count() == 0
        rows = database.table("quarantine").select()
        assert len(rows) == 1
        assert rows[0]["sensor"] == "temperature"
        assert rows[0]["reason"] == "not_finite"
        counter = registry.counter(
            "sor_server_quarantined_readings_total", labels=("sensor", "reason")
        )
        assert counter.value(sensor="temperature", reason="not_finite") == 1

    def test_infinity_is_quarantined(self, world):
        database, processor, task_id, _ = world
        store(database, task_id, [burst("microphone", [math.inf])])
        processor.process_pending()
        assert database.table("quarantine").count(eq("reason", "not_finite")) == 1

    def test_out_of_spec_temperature_is_quarantined(self, world):
        database, processor, task_id, _ = world
        store(database, task_id, [burst("temperature", [5000.0])])
        processor.process_pending()
        rows = database.table("quarantine").select()
        assert [row["reason"] for row in rows] == ["out_of_range"]
        assert rows[0]["payload"]["values"] == [5000.0]

    def test_impossible_gps_fix_is_quarantined(self, world):
        database, processor, task_id, _ = world
        store(database, task_id, [burst("gps", [[123.0, -76.0, 100.0]])])
        processor.process_pending()  # latitude 123° does not exist
        assert database.table("quarantine").count(eq("reason", "out_of_range")) == 1
        assert database.table("readings").count() == 0

    def test_bad_shape_is_quarantined(self, world):
        database, processor, task_id, _ = world
        store(database, task_id, [burst("temperature", [70.0, "warm"])])
        processor.process_pending()
        assert database.table("quarantine").count(eq("reason", "bad_shape")) == 1

    def test_good_bursts_in_same_upload_still_ingest(self, world):
        database, processor, task_id, _ = world
        store(
            database,
            task_id,
            [burst("temperature", [math.nan]), burst("temperature", [70.0])],
        )
        assert processor.process_pending() == 1
        assert database.table("readings").count() == 1
        assert database.table("quarantine").count() == 1
        assert processor.readings_quarantined == 1

    def test_in_range_values_are_untouched(self, world):
        database, processor, task_id, registry = world
        store(database, task_id, [burst("temperature", [68.5, 71.2])])
        processor.process_pending()
        assert database.table("readings").count() == 1
        assert database.table("quarantine").count() == 0
        counter = registry.counter(
            "sor_server_quarantined_readings_total", labels=("sensor", "reason")
        )
        assert list(counter.series()) == []
