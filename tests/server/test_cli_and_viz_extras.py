"""Tests for the CLI entry point and sparkline visualization."""

import pytest

from repro.cli import build_parser, main
from repro.common.errors import ValidationError
from repro.server.visualization import sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_monotone_values_monotone_glyphs(self):
        art = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        levels = "▁▂▃▄▅▆▇█"
        indices = [levels.index(ch) for ch in art]
        assert indices == sorted(indices)
        assert art[-1] == "█"

    def test_resampling_to_width(self):
        assert len(sparkline(range(100), width=20)) == 20

    def test_all_zero_handled(self):
        assert sparkline([0.0, 0.0]) == "▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline([])


class TestCli:
    def test_parser_accepts_all_artefacts(self):
        parser = build_parser()
        for artefact in ("fig6", "fig10", "table1", "table2", "fig14a",
                         "fig14b", "all"):
            assert parser.parse_args([artefact]).artefact == artefact

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "matches paper: YES" in out

    def test_fig14a_quick(self, capsys):
        assert main(["fig14a", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "mean improvement" in out
