"""Regression tests for the RequestExecutor submit/close race.

Before ``_lifecycle`` existed, a submitter could pass the ``_closed``
check, lose the CPU to ``close()``, and enqueue its work behind the
shutdown sentinels — the workers exited first and the caller blocked
forever on ``result()``. These tests hammer that interleaving: every
admitted request (submit returned a handle) must complete, and every
late submit must fail fast with ``None``.
"""

import threading
import time

from repro.server.concurrency import ConcurrencyConfig, RequestExecutor


def make_executor(workers=4, capacity=16):
    return RequestExecutor(
        ConcurrencyConfig(workers=workers, queue_capacity=capacity)
    )


class TestSubmitCloseRace:
    def test_every_admitted_request_finishes(self):
        for attempt in range(20):  # the race needs repetition to surface
            executor = make_executor(workers=2, capacity=8)
            admitted = []
            rejected = []
            start = threading.Barrier(5)

            def submitter():
                start.wait()
                for index in range(50):
                    handle = executor.submit(lambda index=index: index)
                    if handle is None:
                        rejected.append(index)
                    else:
                        admitted.append(handle)

            def closer():
                start.wait()
                time.sleep(0.0005)
                executor.close()

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            threads.append(threading.Thread(target=closer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Admitted work always lands ahead of the sentinels, so every
            # handle resolves; a hang here is the original bug.
            for handle in admitted:
                handle.result(timeout=5.0)

    def test_submit_after_close_returns_none(self):
        executor = make_executor()
        executor.close()
        assert executor.submit(lambda: 1) is None

    def test_close_drains_a_full_queue(self):
        executor = make_executor(workers=1, capacity=4)
        gate = threading.Event()
        started = threading.Event()

        def occupy():
            started.set()
            gate.wait()
            return "held"

        first = executor.submit(occupy)  # occupies the only worker
        assert started.wait(timeout=1.0)  # ...before the backlog fills the queue
        backlog = [executor.submit(lambda index=index: index) for index in range(4)]
        assert all(handle is not None for handle in backlog)
        closer = threading.Thread(target=executor.close)
        closer.start()
        gate.set()
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        assert first.result(timeout=1.0) == "held"
        assert [handle.result(timeout=1.0) for handle in backlog] == [0, 1, 2, 3]

    def test_close_is_idempotent(self):
        executor = make_executor()
        executor.close()
        executor.close()  # second call must not deadlock on sentinels

    def test_worker_exception_is_relayed_not_swallowed(self):
        executor = make_executor()

        def boom():
            raise RuntimeError("handler crashed")

        handle = executor.submit(boom)
        try:
            handle.result(timeout=1.0)
        except RuntimeError as exc:
            assert "handler crashed" in str(exc)
        else:
            raise AssertionError("expected the handler's error to re-raise")
        executor.close()
