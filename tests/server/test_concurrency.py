"""The concurrent request path: locks, pool, backpressure, correctness.

The properties CI's load-smoke job depends on:

* no lost updates — N driver threads' writes all land, and the database
  counts match the acknowledgements the drivers received;
* task ids stay unique (and the underlying counter monotonic) under
  concurrent participation;
* concurrent replays of one idempotent envelope run the handler exactly
  once and every caller gets the identical stored reply;
* a full admission queue answers HTTP 503 with a typed BUSY envelope,
  and the resilient client turns that into backoff-and-retry;
* a WAL written under concurrent load recovers cleanly;
* rank queries (shared lock) run concurrently with writers (exclusive
  lock) without torn reads or errors.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ServerBusyError, TransportError, ValidationError
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.db import DurabilityConfig
from repro.db.wal import open_durable_database
from repro.net import Envelope, HttpRequest, MessageType, NetworkConditions
from repro.net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.transport import Network
from repro.obs import MetricsRegistry, NullTracer
from repro.server.app_manager import Application
from repro.server.concurrency import (
    ConcurrencyConfig,
    ReadWriteLock,
    RequestExecutor,
)
from repro.server.server import SensingServer

HOST = "conc-server"
PLACE = LatLon(43.0, -76.0)


def make_server(
    *,
    concurrency: ConcurrencyConfig | None = None,
    io_delay_s: float = 0.0,
    users: int = 64,
    durability: DurabilityConfig | None = None,
) -> SensingServer:
    metrics = MetricsRegistry()
    network = Network(
        conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
        metrics=metrics,
    )
    server = SensingServer(
        HOST,
        network,
        ManualClock(0.0),
        metrics=metrics,
        tracer=NullTracer(),
        concurrency=concurrency,
        io_delay_s=io_delay_s,
        durability=durability,
    )
    server.create_application(
        Application(
            app_id="app-1",
            creator="tests",
            place_id="place-1",
            place_name="Place 1",
            category="test",
            location=PLACE,
            script="local data = {}\nreturn data",
            pipeline=FeaturePipeline(
                [FeatureSpec("noise", "microphone", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=3600.0,
            num_instants=60,
        )
    )
    for index in range(users):
        server.register_user(f"u-{index}", f"User {index}", f"t-{index}")
    return server


def participate_envelope(index: int, *, keyed: bool = True) -> Envelope:
    envelope = Envelope(
        message_type=MessageType.PARTICIPATE,
        sender=f"phone-{index}",
        recipient=HOST,
        payload={
            "app_id": "app-1",
            "user_id": f"u-{index}",
            "token": f"t-{index}",
            "budget": 5,
            "latitude": PLACE.latitude,
            "longitude": PLACE.longitude,
        },
    )
    return envelope.with_idempotency_key() if keyed else envelope


def post(server: SensingServer, envelope: Envelope) -> Envelope:
    response = server.network.send(
        HttpRequest("POST", HOST, "/sor", envelope.to_bytes())
    )
    assert response.status == 200
    return Envelope.from_bytes(response.body)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share(self) -> None:
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader() -> None:
            with lock.read():
                inside.wait()  # all three must be inside at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_everyone(self) -> None:
        lock = ReadWriteLock()
        log: list[str] = []
        entered = threading.Event()
        release = threading.Event()

        def writer() -> None:
            with lock.write():
                entered.set()
                release.wait(timeout=5.0)
                log.append("writer")

        def reader() -> None:
            entered.wait(timeout=5.0)
            with lock.read():
                log.append("reader")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        entered.wait(timeout=5.0)
        assert log == []  # reader is blocked behind the writer
        release.set()
        w.join(timeout=5.0)
        r.join(timeout=5.0)
        assert log == ["writer", "reader"]

    def test_waiting_writer_blocks_new_readers(self) -> None:
        lock = ReadWriteLock()
        order: list[str] = []
        reader_in = threading.Event()
        release_first = threading.Event()

        def first_reader() -> None:
            with lock.read():
                reader_in.set()
                release_first.wait(timeout=5.0)

        def writer() -> None:
            with lock.write():
                order.append("writer")

        def late_reader() -> None:
            with lock.read():
                order.append("late-reader")

        r1 = threading.Thread(target=first_reader)
        r1.start()
        reader_in.wait(timeout=5.0)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # let the writer queue up
        r2 = threading.Thread(target=late_reader)
        r2.start()
        time.sleep(0.05)
        # Writer preference: the late reader must not slip past the
        # waiting writer while the first reader still holds the lock.
        assert order == []
        release_first.set()
        for thread in (r1, w, r2):
            thread.join(timeout=5.0)
        assert order[0] == "writer"

    def test_config_validation(self) -> None:
        with pytest.raises(ValidationError):
            ConcurrencyConfig(workers=0)
        with pytest.raises(ValidationError):
            ConcurrencyConfig(queue_capacity=0)
        with pytest.raises(ValidationError):
            ConcurrencyConfig(busy_retry_after_s=-1.0)


class TestRequestExecutor:
    def test_runs_submitted_work(self) -> None:
        executor = RequestExecutor(ConcurrencyConfig(workers=4, queue_capacity=8))
        try:
            results = []
            for i in range(16):
                pending = executor.submit(lambda i=i: i * i)
                assert pending is not None
                # Wait each one out so the bounded queue never fills.
                results.append(pending.result(timeout=5.0))
            assert results == [i * i for i in range(16)]
        finally:
            executor.close()

    def test_relays_exceptions(self) -> None:
        executor = RequestExecutor(ConcurrencyConfig(workers=1, queue_capacity=4))
        try:
            def boom() -> None:
                raise RuntimeError("handler exploded")

            pending = executor.submit(boom)
            assert pending is not None
            with pytest.raises(RuntimeError, match="handler exploded"):
                pending.result(timeout=5.0)
        finally:
            executor.close()

    def test_rejects_when_queue_full(self) -> None:
        executor = RequestExecutor(ConcurrencyConfig(workers=1, queue_capacity=1))
        release = threading.Event()
        try:
            blocker = executor.submit(lambda: release.wait(timeout=10.0))
            assert blocker is not None
            time.sleep(0.05)  # let the worker pick the blocker up
            queued = executor.submit(lambda: "queued")
            assert queued is not None
            rejected = [executor.submit(lambda: None) for _ in range(4)]
            assert rejected == [None, None, None, None]
            release.set()
            assert queued.result(timeout=5.0) == "queued"
        finally:
            release.set()
            executor.close()

    def test_close_is_idempotent_and_rejects_afterwards(self) -> None:
        executor = RequestExecutor(ConcurrencyConfig(workers=2, queue_capacity=2))
        executor.close()
        executor.close()
        assert executor.submit(lambda: 1) is None


# ----------------------------------------------------------------------
# server behaviour under concurrent traffic
# ----------------------------------------------------------------------
def test_no_lost_updates_and_unique_task_ids() -> None:
    phones = 48
    clients = 6
    server = make_server(
        concurrency=ConcurrencyConfig(workers=6, queue_capacity=64), users=phones
    )
    try:
        acked: list[str] = []
        lock = threading.Lock()

        def drive(client_index: int) -> None:
            for index in range(client_index, phones, clients):
                schedule = post(server, participate_envelope(index))
                assert schedule.message_type is MessageType.SCHEDULE
                task_id = schedule.payload["task_id"]
                upload = Envelope(
                    message_type=MessageType.SENSED_DATA,
                    sender=f"phone-{index}",
                    recipient=HOST,
                    payload={
                        "task_id": task_id,
                        "token": f"t-{index}",
                        "status": "finished",
                        "executed": 1,
                    },
                ).with_idempotency_key()
                ack = post(server, upload)
                assert ack.message_type is MessageType.ACK
                with lock:
                    acked.append(task_id)

        threads = [
            threading.Thread(target=drive, args=(c,)) for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)

        # Every acknowledged write is in the database, nothing was lost.
        assert len(acked) == phones
        assert len(set(acked)) == phones  # task ids unique
        assert server.database.table("tasks").count() == phones
        assert server.database.table("raw_data").count() == phones
        # Ids carry a monotonic counter suffix: all distinct ordinals.
        ordinals = sorted(int(task.rsplit("-", 1)[1]) for task in acked)
        assert ordinals == list(range(ordinals[0], ordinals[0] + phones))
    finally:
        server.close()


def test_concurrent_idempotent_replays_run_handler_once() -> None:
    server = make_server(
        concurrency=ConcurrencyConfig(workers=8, queue_capacity=64), users=1
    )
    try:
        envelope = participate_envelope(0)  # one content key, many senders
        replies: list[bytes] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8, timeout=5.0)

        def replay() -> None:
            barrier.wait()
            response = server.network.send(
                HttpRequest("POST", HOST, "/sor", envelope.to_bytes())
            )
            with lock:
                replies.append(response.body)

        threads = [threading.Thread(target=replay) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(replies) == 8
        assert len(set(replies)) == 1  # identical stored reply for everyone
        assert server.database.table("tasks").count() == 1  # handler ran once
        duplicates = server.metrics.counter(
            "sor_server_duplicate_envelopes_total", labels=("type",)
        )
        assert duplicates.value(type="participate") == 7
    finally:
        server.close()


def test_full_admission_queue_answers_busy_envelope() -> None:
    server = make_server(
        concurrency=ConcurrencyConfig(
            workers=1, queue_capacity=1, busy_retry_after_s=0.01
        ),
        users=8,
    )
    try:
        executor = server._executor
        assert executor is not None
        # Deterministically saturate the pool: park the only worker on a
        # blocker, then occupy the single queue slot.
        release = threading.Event()
        hold = executor.submit(lambda: release.wait(timeout=10.0))
        assert hold is not None
        fill = None
        deadline = time.monotonic() + 5.0
        while fill is None and time.monotonic() < deadline:
            fill = executor.submit(lambda: None)  # accepted once the
            # worker has taken the blocker off the queue
            if fill is None:
                time.sleep(0.001)
        assert fill is not None

        response = server.network.send(
            HttpRequest("POST", HOST, "/sor", participate_envelope(0).to_bytes())
        )
        assert response.status == 503
        assert response.headers["Retry-After"] == "0.01"
        envelope = Envelope.from_bytes(response.body)
        assert envelope.message_type is MessageType.BUSY
        assert envelope.payload["retry_after_s"] == pytest.approx(0.01)
        assert (
            server.metrics.counter("sor_server_busy_rejections_total").value()
            == 1
        )

        # Drain the pool: the same request is now admitted and succeeds.
        release.set()
        fill.result(timeout=5.0)
        ok = server.network.send(
            HttpRequest("POST", HOST, "/sor", participate_envelope(0).to_bytes())
        )
        assert ok.status == 200
        reply = Envelope.from_bytes(ok.body)
        assert reply.message_type is MessageType.SCHEDULE
    finally:
        server.close()


def test_resilient_client_retries_busy_to_success() -> None:
    server = make_server(
        concurrency=ConcurrencyConfig(workers=1, queue_capacity=1),
        io_delay_s=0.02,
        users=12,
    )
    try:
        client = ResilientClient(
            server.network,
            policy=RetryPolicy(
                max_attempts=64, base_backoff_s=0.005, max_backoff_s=0.05
            ),
            breaker_policy=BreakerPolicy(
                failure_threshold=10_000, recovery_timeout_s=0.001
            ),
            sleep=time.sleep,
            metrics=MetricsRegistry(),
            tracer=NullTracer(),
        )
        results: list[MessageType] = []
        lock = threading.Lock()

        def send(index: int) -> None:
            response = client.send(
                HttpRequest(
                    "POST", HOST, "/sor", participate_envelope(index).to_bytes()
                )
            )
            with lock:
                results.append(Envelope.from_bytes(response.body).message_type)

        threads = [threading.Thread(target=send, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        # Backpressure never surfaced to the caller: retries absorbed it.
        assert results == [MessageType.SCHEDULE] * 12
        assert server.database.table("tasks").count() == 12
    finally:
        server.close()


def test_plain_send_surfaces_busy_as_error() -> None:
    """Without the resilient wrapper a 503 is the caller's problem."""
    server = make_server(
        concurrency=ConcurrencyConfig(workers=1, queue_capacity=1),
        io_delay_s=0.05,
        users=4,
    )
    try:
        client = ResilientClient(
            server.network,
            policy=RetryPolicy(max_attempts=1),
            metrics=MetricsRegistry(),
            tracer=NullTracer(),
        )
        hold = server._executor.submit(lambda: time.sleep(0.3))  # type: ignore[union-attr]
        assert hold is not None
        time.sleep(0.05)
        fill = server._executor.submit(lambda: None)  # type: ignore[union-attr]
        assert fill is not None
        with pytest.raises(TransportError, match="at capacity") as excinfo:
            client.send(
                HttpRequest(
                    "POST", HOST, "/sor", participate_envelope(0).to_bytes()
                )
            )
        assert isinstance(excinfo.value.__cause__, ServerBusyError)
    finally:
        server.close()


def test_rank_queries_run_concurrently_with_writes() -> None:
    server = make_server(
        concurrency=ConcurrencyConfig(workers=8, queue_capacity=64), users=32
    )
    try:
        # Ranking needs at least two places with data in the category.
        for place_index, place_id in enumerate(("place-1", "place-2")):
            for feature_index, feature in enumerate(("noise", "wifi")):
                server.database.table("feature_data").insert(
                    {
                        "place_id": place_id,
                        "category": "test",
                        "feature": feature,
                        "value": 10.0 + 5.0 * place_index + feature_index,
                        "computed_at": 0.0,
                    }
                )
        rank_envelope = Envelope(
            message_type=MessageType.RANK_QUERY,
            sender="reader",
            recipient=HOST,
            payload={
                "category": "test",
                "profiles": [
                    {
                        "name": "p",
                        "preferences": {
                            "noise": {"preferred": "min", "weight": 3}
                        },
                    }
                ],
            },
        )
        outcomes: list[MessageType] = []
        lock = threading.Lock()

        def write(index: int) -> None:
            reply = post(server, participate_envelope(index))
            with lock:
                outcomes.append(reply.message_type)

        def read() -> None:
            for _ in range(8):
                reply = post(server, rank_envelope)
                with lock:
                    outcomes.append(reply.message_type)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(32)
        ] + [threading.Thread(target=read) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert outcomes.count(MessageType.SCHEDULE) == 32
        assert outcomes.count(MessageType.RANKING) == 32
        assert MessageType.ERROR not in outcomes
    finally:
        server.close()


def test_wal_recovers_cleanly_after_concurrent_load(tmp_path) -> None:
    phones = 24
    server = make_server(
        concurrency=ConcurrencyConfig(workers=6, queue_capacity=64),
        users=phones,
        durability=DurabilityConfig(directory=tmp_path, fsync=False),
    )
    try:
        def drive(client_index: int) -> None:
            for index in range(client_index, phones, 4):
                schedule = post(server, participate_envelope(index))
                assert schedule.message_type is MessageType.SCHEDULE
                upload = Envelope(
                    message_type=MessageType.SENSED_DATA,
                    sender=f"phone-{index}",
                    recipient=HOST,
                    payload={
                        "task_id": schedule.payload["task_id"],
                        "token": f"t-{index}",
                        "status": "finished",
                        "executed": 1,
                    },
                ).with_idempotency_key()
                assert post(server, upload).message_type is MessageType.ACK

        threads = [threading.Thread(target=drive, args=(c,)) for c in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
    finally:
        server.close()

    # Hard stop (no graceful flush beyond what reached the OS), then
    # recover from disk into a fresh database.
    assert server.database.durability is not None
    server.database.durability.close()
    recovered, report = open_durable_database(
        DurabilityConfig(directory=tmp_path, fsync=False),
        name="recovered",
        metrics=MetricsRegistry(),
    )
    assert report.records_replayed > 0
    assert recovered.table("tasks").count() == phones
    assert recovered.table("raw_data").count() == phones
    live = server.database.table("tasks").select(order_by="task_id")
    back = recovered.table("tasks").select(order_by="task_id")
    assert [row["task_id"] for row in back] == [row["task_id"] for row in live]


def test_sequential_server_still_works_without_pool() -> None:
    """concurrency=None keeps the old inline single-threaded behaviour."""
    server = make_server(users=2)
    try:
        assert server._executor is None
        schedule = post(server, participate_envelope(0))
        assert schedule.message_type is MessageType.SCHEDULE
        assert server.database.table("tasks").count() == 1
    finally:
        server.close()  # no-op without a pool
