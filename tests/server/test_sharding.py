"""Tests for repro.server.sharding: replicas, promotion, rebalancing."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ConfigurationError
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.db import eq
from repro.net import NetworkConditions
from repro.net.http import HttpRequest
from repro.net.messages import Envelope, MessageType
from repro.net.transport import Network
from repro.obs import MetricsRegistry, NullTracer
from repro.server.app_manager import Application
from repro.server.ranker_service import bump_data_version
from repro.server.sharding import ShardCluster

FEATURES = ("noise_db", "wifi_mbps")

PROFILE = {
    "name": "quiet",
    "preferences": {
        "noise_db": {"preferred": "min", "weight": 5},
        "wifi_mbps": {"preferred": "max", "weight": 2},
    },
}


def make_cluster(tmp_path, *, num_shards=2, replicas=1):
    metrics = MetricsRegistry()
    network = Network(
        conditions=NetworkConditions(base_latency_s=0.0, jitter_s=0.0),
        rng=np.random.default_rng(0),
        metrics=metrics,
    )
    cluster = ShardCluster(
        network,
        ManualClock(0.0),
        tmp_path,
        num_shards=num_shards,
        replicas_per_shard=replicas,
        metrics=metrics,
        tracer=NullTracer(),
        fsync=False,
    )
    return cluster, network


def make_app(index, category):
    return Application(
        app_id=f"app-{index}",
        creator="test",
        place_id=f"place-{index}",
        place_name=f"Place {index}",
        category=category,
        location=LatLon(43.0 + 0.001 * index, -76.0),
        script="local data = {}\nreturn data",
        pipeline=FeaturePipeline(
            [
                FeatureSpec(feature, "microphone", MeanExtractor())
                for feature in FEATURES
            ]
        ),
        period_start=0.0,
        period_end=100.0,
        num_instants=4,
    )


def seed_features(primary, index, category, *, base=10.0):
    for feature_index, feature in enumerate(FEATURES):
        primary.database.table("feature_data").insert(
            {
                "place_id": f"place-{index}",
                "category": category,
                "feature": feature,
                "value": float(base + 7.0 * index + 3.0 * feature_index),
                "computed_at": 0.0,
            }
        )


def place_category(cluster, indices, category, *, pin_to=None):
    for index in indices:
        primary = cluster.create_application(
            make_app(index, category), pin_to=pin_to
        )
        seed_features(primary, index, category)
    return primary


def rank_query(category):
    return Envelope(
        message_type=MessageType.RANK_QUERY,
        sender="phone-1",
        recipient="",
        payload={"category": category, "profiles": [PROFILE]},
    )


def post(network, host, envelope):
    return network.send(HttpRequest("POST", host, "/sor", envelope.to_bytes()))


class TestReplica:
    def test_replica_serves_rank_from_shipped_wal(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            applied = cluster.sync_replicas()
            assert applied > 0
            response = post(network, "shard-0-r0", rank_query("museums"))
            assert response.status == 200
            reply = Envelope.from_bytes(response.body)
            assert reply.message_type is MessageType.RANKING
            places = reply.payload["rankings"][0]["places"]
            assert sorted(places) == ["place-0", "place-1"]
        finally:
            cluster.close()

    def test_replica_matches_primary_ranking_exactly(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1, 2), "museums", pin_to="shard-0")
            cluster.sync_replicas()
            primary_reply = Envelope.from_bytes(
                post(network, "shard-0", rank_query("museums")).body
            )
            replica_reply = Envelope.from_bytes(
                post(network, "shard-0-r0", rank_query("museums")).body
            )
            assert primary_reply.payload == replica_reply.payload
        finally:
            cluster.close()

    def test_staleness_is_bounded_and_versioned(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            primary = place_category(
                cluster, (0, 1), "museums", pin_to="shard-0"
            )
            cluster.sync_replicas()
            stale = Envelope.from_bytes(
                post(network, "shard-0-r0", rank_query("museums")).body
            )
            # The primary moves on: new data, bumped version.
            with primary.database.transaction():
                seed_features(primary, 2, "museums", base=500.0)
                version = bump_data_version(primary.database, "museums")
            replica = cluster.shards["shard-0"].replicas[0]
            assert replica.pending() > 0  # lag is measurable...
            behind = Envelope.from_bytes(
                post(network, "shard-0-r0", rank_query("museums")).body
            )
            # ...and visible: the stale reply still declares the version
            # it was computed against instead of impersonating the new one.
            assert behind.payload["data_version"] == stale.payload["data_version"]
            assert behind.payload["data_version"] < version
            cluster.sync_replicas()
            fresh = Envelope.from_bytes(
                post(network, "shard-0-r0", rank_query("museums")).body
            )
            assert fresh.payload["data_version"] == version
            assert replica.pending() == 0
        finally:
            cluster.close()

    def test_replica_is_read_only(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            envelope = Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="phone-1",
                recipient="",
                payload={"app_id": "app-0"},
            ).with_idempotency_key()
            response = post(network, "shard-0-r0", envelope)
            assert response.status == 405
        finally:
            cluster.close()


class TestPromotion:
    def test_promote_refuses_while_primary_lives(self, tmp_path):
        cluster, _ = make_cluster(tmp_path)
        try:
            with pytest.raises(ConfigurationError, match="still registered"):
                cluster.promote("shard-0")
        finally:
            cluster.close()

    def test_promote_without_replicas_refuses(self, tmp_path):
        cluster, _ = make_cluster(tmp_path, replicas=0)
        try:
            cluster.kill_primary("shard-0")
            with pytest.raises(ConfigurationError, match="no replica"):
                cluster.promote("shard-0")
        finally:
            cluster.close()

    def test_promotion_preserves_acked_data_and_host(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            # Deliberately do NOT sync before the kill: promotion's final
            # catch-up read of the dead primary's directory must recover
            # everything that was acked, not just what was shipped.
            cluster.kill_primary("shard-0")
            promoted = cluster.promote("shard-0")
            assert promoted.host == "shard-0"  # task-id prefixes stay valid
            assert cluster.shards["shard-0"].primary is promoted
            rows = promoted.database.table("feature_data").select(
                eq("category", "museums")
            )
            assert len(rows) == 2 * len(FEATURES)
            # The consumed replica is gone from the routing table; the
            # re-seeded replacement (fresh host, never reused) is in.
            assert cluster.table.shards["shard-0"].replicas == ("shard-0-r1",)
            # The promoted primary is durable: commits flow into a
            # re-attached WAL in the same directory.
            assert promoted.database.durability is not None
            assert not promoted.database.durability.closed
            response = post(network, "shard-0", rank_query("museums"))
            assert Envelope.from_bytes(response.body).message_type is (
                MessageType.RANKING
            )
            failovers = cluster.metrics.get("sor_shard_failovers_total")
            assert failovers.value() == 1
        finally:
            cluster.close()

    def test_promoted_primary_serves_writes_via_router(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.register_user("user-1", "User One", "token-1")
            cluster.kill_primary("shard-0")
            cluster.promote("shard-0")
            envelope = Envelope(
                message_type=MessageType.PARTICIPATE,
                sender="user-1",
                recipient="",
                payload={
                    "app_id": "app-0",
                    "user_id": "user-1",
                    "token": "token-1",
                    "budget": 2,
                    "latitude": 43.0,
                    "longitude": -76.0,
                },
            ).with_idempotency_key()
            response = post(network, cluster.router_host, envelope)
            assert response.status == 200
            reply = Envelope.from_bytes(response.body)
            assert reply.message_type is not MessageType.ERROR
        finally:
            cluster.close()


class TestDurableFailover:
    def test_promoted_primary_survives_second_kill(self, tmp_path):
        """The core durable-promotion claim: kill the shard twice.

        Data written *after* the first promotion goes through the
        re-attached WAL, so the second promotion (from the re-seeded
        replica) must recover it too.
        """
        cluster, _ = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0")
            promoted = cluster.promote("shard-0")
            # New acked data on the promoted primary, never synced to
            # the replacement replica before the second kill.
            seed_features(promoted, 2, "museums")
            cluster.kill_primary("shard-0")
            second = cluster.promote("shard-0")
            rows = second.database.table("feature_data").select(
                eq("category", "museums")
            )
            assert len(rows) == 3 * len(FEATURES)
            assert second.database.durability is not None
            failovers = cluster.metrics.get("sor_shard_failovers_total")
            assert failovers.value() == 2
        finally:
            cluster.close()

    def test_promote_refuses_laggy_replica(self, tmp_path):
        """A replica whose catch-up leaves shipped records unapplied
        must not be silently promoted over acked data."""
        cluster, _ = make_cluster(tmp_path)
        try:
            # Written after the replica's constructor sync, never
            # shipped: the replica is genuinely behind the log.
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0")
            replica = cluster.shards["shard-0"].replicas[0]
            replica.sync = lambda: 0  # a catch-up pass that goes nowhere
            with pytest.raises(ConfigurationError, match="laggy"):
                cluster.promote("shard-0")
        finally:
            cluster.close()

    def test_promote_reports_catchup_count_in_metrics(self, tmp_path):
        cluster, _ = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0")
            cluster.promote("shard-0")
            catchup = cluster.metrics.get(
                "sor_shard_promote_catchup_records_total"
            )
            # The feature rows written after the ctor sync were only
            # recovered by promotion's final file-level catch-up.
            assert catchup.value(shard="shard-0") >= 2 * len(FEATURES)
        finally:
            cluster.close()

    def test_reseeded_replica_bootstraps_from_checkpoint(self, tmp_path):
        cluster, network = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0")
            cluster.promote("shard-0")
            shard = cluster.shards["shard-0"]
            assert [replica.host for replica in shard.replicas] == [
                "shard-0-r1"
            ]
            replacement = shard.replicas[0]
            # Bootstrapped from the promotion checkpoint (generation 2),
            # not a full replay of segment 1.
            assert replacement._cursor.seq >= 2
            reseeds = cluster.metrics.get("sor_shard_reseeds_total")
            assert reseeds.value(shard="shard-0") == 1
            bootstraps = cluster.metrics.get(
                "sor_shard_replica_bootstraps_total"
            )
            assert bootstraps.value(replica="shard-0-r1") == 1
            # And it serves rank queries for the shard's category.
            response = post(network, "shard-0-r1", rank_query("museums"))
            assert response.status == 200
            assert Envelope.from_bytes(response.body).message_type is (
                MessageType.RANKING
            )
        finally:
            cluster.close()

    def test_promote_without_reseed_leaves_replica_set_empty(self, tmp_path):
        cluster, _ = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0")
            cluster.promote("shard-0", reseed=False)
            assert cluster.shards["shard-0"].replicas == []
            assert cluster.table.shards["shard-0"].replicas == ()
        finally:
            cluster.close()

    def test_wreck_kill_is_survivable(self, tmp_path):
        """A kill inside checkpoint compaction plus a torn, uncommitted
        WAL tail: promotion must discard the wreckage, keep the acked
        rows, and re-attach cleanly on top."""
        cluster, _ = make_cluster(tmp_path)
        try:
            place_category(cluster, (0, 1), "museums", pin_to="shard-0")
            cluster.kill_primary("shard-0", wreck=True)
            promoted = cluster.promote("shard-0")
            rows = promoted.database.table("feature_data").select(
                eq("category", "museums")
            )
            assert len(rows) == 2 * len(FEATURES)
            assert not any("doomed" in str(row) for row in rows)
            # And the wrecked directory still recovers after yet
            # another kill — the re-attach sanitized the torn tail.
            seed_features(promoted, 2, "museums")
            cluster.kill_primary("shard-0")
            second = cluster.promote("shard-0")
            rows = second.database.table("feature_data").select(
                eq("category", "museums")
            )
            assert len(rows) == 3 * len(FEATURES)
        finally:
            cluster.close()


class TestRebalance:
    def test_add_shard_moves_ring_owned_categories(self, tmp_path):
        cluster, _ = make_cluster(tmp_path, num_shards=1, replicas=0)
        try:
            categories = [f"cat-{index}" for index in range(8)]
            for index, category in enumerate(categories):
                primary = cluster.create_application(make_app(index, category))
                seed_features(primary, index, category)
                bump_data_version(primary.database, category)
            cluster.add_shard()
            moved = [
                category
                for category in categories
                if cluster.table.category_owner(category) == "shard-1"
            ]
            assert moved  # the ring hands shard-1 a share of the space
            assert len(moved) < len(categories)  # ...not everything
            for index, category in enumerate(categories):
                owner = cluster.shards[
                    cluster.table.category_owner(category)
                ].primary
                rows = owner.database.table("feature_data").select(
                    eq("category", category)
                )
                assert len(rows) == len(FEATURES)
                assert owner.apps.get(f"app-{index}") is not None
                # Version numbers survive the move, so replica caches
                # keyed on (category, version) can never alias.
                assert (
                    owner.database.table("ranking_versions")
                    .get(category)["data_version"]
                    == 1
                )
            # Nothing left behind on the old owner.
            for category in moved:
                stale = cluster.shards["shard-0"].primary
                assert stale.database.table("feature_data").select(
                    eq("category", category)
                ) == []
                assert stale.apps.get(f"app-{categories.index(category)}") is None
        finally:
            cluster.close()

    def test_pinned_categories_never_rebalance(self, tmp_path):
        cluster, _ = make_cluster(tmp_path, num_shards=2, replicas=0)
        try:
            place_category(cluster, (0,), "museums", pin_to="shard-0")
            cluster.add_shard()
            assert cluster.table.category_owner("museums") == "shard-0"
            primary = cluster.shards["shard-0"].primary
            assert primary.apps.get("app-0") is not None
        finally:
            cluster.close()

    def test_new_shard_knows_registered_users(self, tmp_path):
        cluster, _ = make_cluster(tmp_path, num_shards=1, replicas=0)
        try:
            cluster.register_user("user-1", "User One", "token-1")
            shard = cluster.add_shard()
            users = shard.primary.database.table("users").select()
            assert [row["user_id"] for row in users] == ["user-1"]
        finally:
            cluster.close()
