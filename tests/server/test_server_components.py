"""Tests for the sensing server's backend components."""

import pytest

from repro.common.errors import ConfigurationError, ParticipationError
from repro.common.geo import LatLon, offset_latlon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.db import Database
from repro.server.app_manager import Application, ApplicationManager
from repro.server.participation import ParticipationManager, ParticipationStatus
from repro.server.schemas import create_all_tables
from repro.server.scheduler_service import SensingSchedulerService
from repro.server.user_manager import UserInfoManager

PLACE = LatLon(43.05, -76.15)


def simple_pipeline():
    return FeaturePipeline(
        [FeatureSpec("temperature", "temperature", MeanExtractor())]
    )


def make_application(**overrides):
    defaults = dict(
        app_id="app-1",
        creator="owner",
        place_id="place-1",
        place_name="Place One",
        category="coffee_shop",
        location=PLACE,
        script="return get_temperature_readings(3, 1.0)",
        pipeline=simple_pipeline(),
        period_start=0.0,
        period_end=10_800.0,
        num_instants=1080,
    )
    defaults.update(overrides)
    return Application(**defaults)


@pytest.fixture
def backend(clock):
    database = Database()
    create_all_tables(database)
    users = UserInfoManager(database, clock)
    apps = ApplicationManager(database)
    participation = ParticipationManager(database, users, apps, clock)
    scheduler = SensingSchedulerService(participation, clock)
    return database, users, apps, participation, scheduler, clock


class TestUserInfoManager:
    def test_register_and_verify(self, backend):
        _, users, *_ = backend
        users.register("alice", "Alice", "tok-a")
        assert users.is_registered("alice")
        assert users.verify("alice", "tok-a")
        assert not users.verify("alice", "wrong")
        assert not users.verify("ghost", "tok-a")

    def test_token_lookup(self, backend):
        _, users, *_ = backend
        users.register("alice", "Alice", "tok-a")
        assert users.by_token("tok-a")["user_id"] == "alice"
        assert users.by_token("ghost") is None

    def test_duplicate_token_rejected(self, backend):
        from repro.common.errors import DatabaseError

        _, users, *_ = backend
        users.register("alice", "Alice", "tok")
        with pytest.raises(DatabaseError):
            users.register("bob", "Bob", "tok")

    def test_preferences(self, backend):
        _, users, *_ = backend
        users.register("alice", "Alice", "tok-a")
        assert users.update_preferences("tok-a", ["gps"])
        assert users.denied_sensors("alice") == ["gps"]
        assert not users.update_preferences("ghost", [])


class TestApplicationManager:
    def test_create_and_lookup(self, backend):
        _, _, apps, *_ = backend
        apps.create(make_application())
        assert apps.get("app-1").place_name == "Place One"
        assert apps.pipeline_for("app-1").feature_names == ["temperature"]
        assert len(apps.apps_in_category("coffee_shop")) == 1

    def test_duplicate_rejected(self, backend):
        _, _, apps, *_ = backend
        apps.create(make_application())
        with pytest.raises(ConfigurationError):
            apps.create(make_application())

    def test_unparseable_script_rejected(self, backend):
        _, _, apps, *_ = backend
        with pytest.raises(ConfigurationError, match="parse"):
            apps.create(make_application(script="local local local"))

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            make_application(period_start=100.0, period_end=50.0)


class TestParticipationManager:
    def setup_participant(self, backend):
        _, users, apps, participation, _, clock = backend
        users.register("alice", "Alice", "tok-a")
        apps.create(make_application())
        clock.advance(100.0)
        return participation, clock

    def test_create_task_happy_path(self, backend):
        participation, _ = self.setup_participant(backend)
        task_id = participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=PLACE, budget=5,
        )
        task = participation.get_task(task_id)
        assert task["status"] == ParticipationStatus.WAITING_FOR_SCHEDULE.value
        assert task["budget"] == 5

    def test_location_verification_rejects_liar(self, backend):
        participation, _ = self.setup_participant(backend)
        far_away = offset_latlon(PLACE, east_m=5000.0, north_m=0.0)
        with pytest.raises(ParticipationError, match="not at"):
            participation.create_task(
                app_id="app-1", user_id="alice", token="tok-a",
                phone_host="phone-1", location=far_away, budget=5,
            )

    def test_nearby_location_accepted(self, backend):
        participation, _ = self.setup_participant(backend)
        nearby = offset_latlon(PLACE, east_m=200.0, north_m=100.0)
        participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=nearby, budget=5,
        )

    def test_unknown_user_rejected(self, backend):
        participation, _ = self.setup_participant(backend)
        with pytest.raises(ParticipationError, match="user"):
            participation.create_task(
                app_id="app-1", user_id="mallory", token="tok-a",
                phone_host="phone-1", location=PLACE, budget=5,
            )

    def test_wrong_token_rejected(self, backend):
        participation, _ = self.setup_participant(backend)
        with pytest.raises(ParticipationError):
            participation.create_task(
                app_id="app-1", user_id="alice", token="stolen",
                phone_host="phone-1", location=PLACE, budget=5,
            )

    def test_unknown_app_rejected(self, backend):
        participation, _ = self.setup_participant(backend)
        with pytest.raises(ParticipationError, match="application"):
            participation.create_task(
                app_id="ghost", user_id="alice", token="tok-a",
                phone_host="phone-1", location=PLACE, budget=5,
            )

    def test_outside_period_rejected(self, backend):
        participation, clock = self.setup_participant(backend)
        clock.set(20_000.0)
        with pytest.raises(ParticipationError, match="period"):
            participation.create_task(
                app_id="app-1", user_id="alice", token="tok-a",
                phone_host="phone-1", location=PLACE, budget=5,
            )

    def test_status_transitions(self, backend):
        participation, _ = self.setup_participant(backend)
        task_id = participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=PLACE, budget=5,
        )
        participation.record_schedule(task_id, [100.0, 200.0])
        task = participation.get_task(task_id)
        assert task["status"] == ParticipationStatus.RUNNING.value
        assert task["schedule_times"] == [100.0, 200.0]
        participation.mark_status(task_id, ParticipationStatus.ERROR, error="boom")
        assert participation.get_task(task_id)["error"] == "boom"

    def test_leaving_marks_finished(self, backend):
        """The paper: status becomes 'finished' when the user leaves."""
        participation, _ = self.setup_participant(backend)
        task_id = participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=PLACE, budget=5,
        )
        participation.record_schedule(task_id, [100.0])
        far = offset_latlon(PLACE, east_m=10_000.0, north_m=0.0)
        finished = participation.handle_location_report("tok-a", far)
        assert finished == [task_id]
        assert (
            participation.get_task(task_id)["status"]
            == ParticipationStatus.FINISHED.value
        )

    def test_still_present_not_finished(self, backend):
        participation, _ = self.setup_participant(backend)
        task_id = participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=PLACE, budget=5,
        )
        participation.record_schedule(task_id, [100.0])
        assert participation.handle_location_report("tok-a", PLACE) == []


class TestSchedulerService:
    def test_online_scheduling_respects_budget_and_window(self, backend):
        _, users, apps, participation, scheduler, clock = backend
        users.register("alice", "Alice", "tok-a")
        application = make_application()
        apps.create(application)
        clock.advance(1000.0)
        task_id = participation.create_task(
            app_id="app-1", user_id="alice", token="tok-a",
            phone_host="phone-1", location=PLACE, budget=7,
        )
        times = scheduler.schedule_task(application, task_id, budget=7)
        assert len(times) == 7
        assert all(1000.0 <= t <= 10_800.0 for t in times)

    def test_second_user_avoids_first(self, backend):
        _, users, apps, participation, scheduler, clock = backend
        users.register("a", "A", "tok-a")
        users.register("b", "B", "tok-b")
        application = make_application(coverage_sigma_s=300.0)
        apps.create(application)
        clock.advance(10.0)
        first_task = participation.create_task(
            app_id="app-1", user_id="a", token="tok-a",
            phone_host="p1", location=PLACE, budget=5,
        )
        first_times = scheduler.schedule_task(application, first_task, budget=5)
        second_task = participation.create_task(
            app_id="app-1", user_id="b", token="tok-b",
            phone_host="p2", location=PLACE, budget=5,
        )
        second_times = scheduler.schedule_task(application, second_task, budget=5)
        assert not set(first_times) & set(second_times)

    def test_departure_time_clips_schedule(self, backend):
        _, users, apps, participation, scheduler, clock = backend
        users.register("a", "A", "tok-a")
        application = make_application()
        apps.create(application)
        clock.advance(10.0)
        task = participation.create_task(
            app_id="app-1", user_id="a", token="tok-a",
            phone_host="p1", location=PLACE, budget=20,
        )
        times = scheduler.schedule_task(
            application, task, budget=20, departure_time=2_000.0
        )
        assert all(t <= 2_000.0 for t in times)

    def test_coverage_reported(self, backend):
        _, users, apps, participation, scheduler, clock = backend
        users.register("a", "A", "tok-a")
        application = make_application()
        apps.create(application)
        clock.advance(10.0)
        assert scheduler.coverage_for(application) == 0.0
        task = participation.create_task(
            app_id="app-1", user_id="a", token="tok-a",
            phone_host="p1", location=PLACE, budget=10,
        )
        scheduler.schedule_task(application, task, budget=10)
        assert scheduler.coverage_for(application) > 0.0
