"""Tests for the SensingServer HTTP endpoint and visualization."""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import (
    CloudMessenger,
    Envelope,
    HttpRequest,
    MessageType,
    NetworkConditions,
)
from repro.net.transport import Network
from repro.server import SensingServer
from repro.server.app_manager import Application
from repro.server.visualization import bar_chart, feature_table, to_csv

PLACE = LatLon(43.05, -76.15)


def make_server(clock=None, drop=0.0):
    clock = clock or ManualClock(start=10.0)
    network = Network(
        conditions=NetworkConditions(drop_probability=drop),
        rng=np.random.default_rng(0),
    )
    gcm = CloudMessenger()
    server = SensingServer("server", network, clock, gcm=gcm)
    server.register_user("alice", "Alice", "tok-a")
    server.create_application(
        Application(
            app_id="app-1",
            creator="owner",
            place_id="place-1",
            place_name="Place One",
            category="coffee_shop",
            location=PLACE,
            script="return get_temperature_readings(2, 1.0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    return server, network, clock, gcm


def post(network, envelope):
    response = network.send(
        HttpRequest("POST", "server", "/sor", envelope.to_bytes())
    )
    assert response.ok
    return Envelope.from_bytes(response.body)


def participate(network, *, budget=5, token="tok-a", user_id="alice"):
    return post(
        network,
        Envelope(
            MessageType.PARTICIPATE,
            sender="phone-1",
            recipient="server",
            payload={
                "user_id": user_id,
                "token": token,
                "app_id": "app-1",
                "place_id": "place-1",
                "latitude": PLACE.latitude,
                "longitude": PLACE.longitude,
                "budget": budget,
            },
        ),
    )


class TestParticipateEndpoint:
    def test_returns_schedule_with_script(self):
        _, network, *_ = make_server()
        reply = participate(network)
        assert reply.message_type is MessageType.SCHEDULE
        assert len(reply.payload["times"]) == 5
        assert "get_temperature_readings" in reply.payload["script"]
        # Task ids are namespaced by server host so multiple servers
        # sharing one database never collide.
        assert reply.payload["task_id"].startswith("server:task-")

    def test_rejects_bad_token(self):
        _, network, *_ = make_server()
        reply = participate(network, token="stolen")
        assert reply.message_type is MessageType.ERROR

    def test_rejects_malformed(self):
        _, network, *_ = make_server()
        reply = post(
            network,
            Envelope(MessageType.PARTICIPATE, "phone-1", "server", {"nope": 1}),
        )
        assert reply.message_type is MessageType.ERROR

    def test_garbage_body_is_400(self):
        _, network, *_ = make_server()
        response = network.send(HttpRequest("POST", "server", "/sor", b"junk"))
        assert response.status == 400

    def test_unhandled_type_is_404(self):
        _, network, *_ = make_server()
        envelope = Envelope(MessageType.ACK, "phone-1", "server", {})
        response = network.send(
            HttpRequest("POST", "server", "/sor", envelope.to_bytes())
        )
        assert response.status == 404


class TestSensedDataEndpoint:
    def upload(self, network, task_id, *, status="finished", token="tok-a"):
        return post(
            network,
            Envelope(
                MessageType.SENSED_DATA,
                sender="phone-1",
                recipient="server",
                payload={
                    "task_id": task_id,
                    "token": token,
                    "status": status,
                    "error": "",
                    "bursts": [
                        {
                            "sensor": "temperature",
                            "t": 100.0,
                            "dt": 1.0,
                            "values": [70.0, 72.0],
                        }
                    ],
                },
            ),
        )

    def test_upload_stores_blob_and_acks(self):
        server, network, *_ = make_server()
        task_id = participate(network).payload["task_id"]
        reply = self.upload(network, task_id)
        assert reply.message_type is MessageType.ACK
        assert server.database.table("raw_data").count() == 1

    def test_processing_decodes_and_computes_features(self):
        server, network, *_ = make_server()
        task_id = participate(network).payload["task_id"]
        self.upload(network, task_id)
        assert server.process_data() == 1
        features = server.compute_all_features()
        assert features["place-1"]["temperature"] == pytest.approx(71.0)
        rows = server.database.table("feature_data").select()
        assert len(rows) == 1

    def test_recompute_updates_not_duplicates(self):
        server, network, *_ = make_server()
        task_id = participate(network).payload["task_id"]
        self.upload(network, task_id)
        server.process_data()
        server.compute_all_features()
        server.compute_all_features()
        assert server.database.table("feature_data").count() == 1

    def test_unknown_task_rejected(self):
        server, network, *_ = make_server()
        reply = self.upload(network, "task-999")
        assert reply.message_type is MessageType.ERROR

    def test_error_status_recorded(self):
        server, network, *_ = make_server()
        task_id = participate(network).payload["task_id"]
        self.upload(network, task_id, status="error")
        task = server.participation.get_task(task_id)
        assert task["status"] == "error"


class TestOtherEndpoints:
    def test_preferences(self):
        server, network, *_ = make_server()
        reply = post(
            network,
            Envelope(
                MessageType.PREFERENCES,
                "phone-1",
                "server",
                {"token": "tok-a", "denied": ["gps"]},
            ),
        )
        assert reply.message_type is MessageType.ACK
        assert server.users.denied_sensors("alice") == ["gps"]

    def test_pong_updates_host(self):
        server, network, *_ = make_server()
        post(
            network,
            Envelope(
                MessageType.PONG, "phone-9", "server",
                {"token": "tok-a", "host": "phone-9"},
            ),
        )
        assert server._phone_hosts["tok-a"] == "phone-9"

    def test_gcm_fallback_ping(self):
        server, network, clock, gcm = make_server()
        woken = []
        gcm.register_device("tok-a", woken.append)
        # Server has no HTTP host for the phone yet → must use GCM.
        assert server.ping_phone("tok-a")
        assert woken and woken[0]["action"] == "ping"

    def test_ping_unknown_phone_fails(self):
        server, *_ = make_server()
        assert not server.ping_phone("ghost-token")


class TestVisualization:
    DATA = {
        "Tim Hortons": {"temperature": 66.0, "noise": 58.0},
        "Starbucks": {"temperature": 75.0, "noise": 72.0},
    }

    def test_bar_chart(self):
        chart = bar_chart("Temperature", {"a": 1.0, "b": 2.0}, unit="F")
        assert "Temperature" in chart
        assert chart.count("\n") >= 3
        assert "2.000 F" in chart

    def test_bar_chart_empty_rejected(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            bar_chart("x", {})

    def test_feature_table_aligned(self):
        table = feature_table(self.DATA, ["temperature", "noise"])
        lines = table.splitlines()
        assert "temperature" in lines[0]
        assert any("Tim Hortons" in line for line in lines)

    def test_csv_export(self):
        csv = to_csv(self.DATA, ["temperature", "noise"])
        lines = csv.strip().splitlines()
        assert lines[0] == "place,temperature,noise"
        assert len(lines) == 3
        assert "66.0" in lines[1]
