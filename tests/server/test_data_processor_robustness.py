"""Data Processor robustness: malformed uploads must not poison the
pipeline."""

import pytest

from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.db import Database, eq
from repro.net import Envelope, MessageType
from repro.server.app_manager import Application, ApplicationManager
from repro.server.data_processor import DataProcessor
from repro.server.participation import ParticipationManager
from repro.server.schemas import create_all_tables
from repro.server.user_manager import UserInfoManager

PLACE = LatLon(43.05, -76.15)


@pytest.fixture
def world(clock):
    database = Database()
    create_all_tables(database)
    users = UserInfoManager(database, clock)
    users.register("alice", "Alice", "tok-a")
    apps = ApplicationManager(database)
    apps.create(
        Application(
            app_id="app-1",
            creator="o",
            place_id="place-1",
            place_name="P",
            category="c",
            location=PLACE,
            script="return get_temperature_readings(1, 0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    participation = ParticipationManager(database, users, apps, clock)
    clock.advance(10.0)
    task_id = participation.create_task(
        app_id="app-1", user_id="alice", token="tok-a",
        phone_host="phone-1", location=PLACE, budget=3,
    )
    processor = DataProcessor(database, apps, clock)
    return database, processor, task_id


def store_blob(database, body: bytes):
    database.table("raw_data").insert(
        {"task_id": "whatever", "received_at": 0.0, "body": body, "processed": False}
    )


def good_envelope(task_id, bursts):
    return Envelope(
        MessageType.SENSED_DATA,
        "phone-1",
        "server",
        {"task_id": task_id, "bursts": bursts},
    ).to_bytes()


class TestRobustness:
    def test_garbage_blob_rejected_and_marked(self, world):
        database, processor, _ = world
        store_blob(database, b"\xde\xad\xbe\xef")
        assert processor.process_pending() == 0
        assert processor.blobs_rejected == 1
        assert all(row["processed"] for row in database.table("raw_data").select())

    def test_unknown_task_rejected(self, world):
        database, processor, _ = world
        store_blob(database, good_envelope("ghost-task", []))
        processor.process_pending()
        assert processor.blobs_rejected == 1
        assert database.table("readings").count() == 0

    def test_wrong_payload_shape_rejected(self, world):
        database, processor, task_id = world
        bad = Envelope(
            MessageType.SENSED_DATA, "p", "s", {"task_id": task_id, "bursts": "no"}
        ).to_bytes()
        store_blob(database, bad)
        processor.process_pending()
        assert processor.blobs_rejected == 1

    def test_non_dict_burst_rejected_atomically(self, world):
        database, processor, task_id = world
        bad = good_envelope(task_id, [{"sensor": "temperature", "t": 1.0,
                                       "dt": 0.0, "values": [70.0]}, "junk"])
        store_blob(database, bad)
        processor.process_pending()
        assert processor.blobs_rejected == 1
        # Atomicity: the valid first burst of the rejected payload must
        # not have leaked into the readings table.
        assert database.table("readings").count() == 0

    def test_bad_blob_does_not_block_good_ones(self, world):
        database, processor, task_id = world
        store_blob(database, b"garbage")
        store_blob(
            database,
            good_envelope(
                task_id,
                [{"sensor": "temperature", "t": 1.0, "dt": 0.0, "values": [70.0]}],
            ),
        )
        assert processor.process_pending() == 1
        assert processor.blobs_rejected == 1
        assert database.table("readings").count(eq("sensor", "temperature")) == 1

    def test_reprocessing_is_idempotent(self, world):
        database, processor, task_id = world
        store_blob(
            database,
            good_envelope(
                task_id,
                [{"sensor": "temperature", "t": 1.0, "dt": 0.0, "values": [70.0]}],
            ),
        )
        assert processor.process_pending() == 1
        assert processor.process_pending() == 0
        assert database.table("readings").count() == 1
