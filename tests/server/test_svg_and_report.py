"""Tests for SVG chart generation and the report writer."""

import xml.etree.ElementTree as ET

import pytest

from repro.common.errors import ValidationError
from repro.server.svg_charts import bar_chart_svg, line_chart_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestBarChartSvg:
    VALUES = {"Tim Hortons": 66.0, "B&N Cafe": 72.0, "Starbucks": 75.0}

    def test_valid_xml_with_title(self):
        root = parse(bar_chart_svg("Temperature", self.VALUES))
        assert root.tag.endswith("svg")
        title = root.find("{http://www.w3.org/2000/svg}title")
        assert title is not None and title.text == "Temperature"

    def test_one_rect_per_bar_plus_background(self):
        root = parse(bar_chart_svg("t", self.VALUES))
        rects = root.findall("{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 1 + len(self.VALUES)

    def test_labels_escaped(self):
        svg = bar_chart_svg("a < b & c", {"x<y": 1.0})
        parse(svg)  # must not raise
        assert "a &lt; b &amp; c" in svg

    def test_negative_values_supported(self):
        svg = bar_chart_svg("wifi", {"a": -55.0, "b": -65.0})
        parse(svg)
        assert "-55" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart_svg("t", {})


class TestLineChartSvg:
    SERIES = {
        "greedy": [(10, 0.34), (20, 0.64), (30, 0.81)],
        "baseline": [(10, 0.15), (20, 0.28), (30, 0.38)],
    }

    def test_valid_xml(self):
        root = parse(line_chart_svg("Fig 14", self.SERIES, x_label="users"))
        assert root.tag.endswith("svg")

    def test_one_path_per_series(self):
        root = parse(line_chart_svg("t", self.SERIES))
        paths = root.findall("{http://www.w3.org/2000/svg}path")
        assert len(paths) == 2

    def test_one_marker_per_point(self):
        root = parse(line_chart_svg("t", self.SERIES))
        circles = root.findall("{http://www.w3.org/2000/svg}circle")
        assert len(circles) == 6

    def test_legend_present(self):
        svg = line_chart_svg("t", self.SERIES)
        assert "greedy" in svg and "baseline" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            line_chart_svg("t", {})
        with pytest.raises(ValidationError):
            line_chart_svg("t", {"empty": []})


class TestReportWriter:
    def test_writes_all_artifacts(self, tmp_path):
        from repro.experiments.report import write_report

        report = write_report(tmp_path, sweep_runs=1)
        names = {path.name for path in tmp_path.iterdir()}
        assert "report.md" in names
        assert "fig14a.svg" in names and "fig14b.svg" in names
        assert "features_trails.csv" in names
        assert sum(1 for name in names if name.startswith("fig6_")) == 5
        assert sum(1 for name in names if name.startswith("fig10_")) == 4
        content = report.read_text()
        assert "Table I" in content and "Table II" in content
        assert "❌" not in content  # every row matched
        for svg in tmp_path.glob("*.svg"):
            ET.fromstring(svg.read_text())
