"""Tests for repro.common.rng."""

from repro.common.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_path_depth(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_accepts_integer_names(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)
        assert derive_seed(1, 0) != derive_seed(1, 1)


class TestRngRegistry:
    def test_same_stream_same_values(self):
        registry = RngRegistry(root_seed=7)
        a = registry.generator("x")
        b = registry.generator("x")
        assert [float(a.random()) for _ in range(5)] == [
            float(b.random()) for _ in range(5)
        ]

    def test_different_streams_differ(self):
        registry = RngRegistry(root_seed=7)
        a = registry.generator("x")
        b = registry.generator("y")
        assert float(a.random()) != float(b.random())

    def test_seed_for_matches_generator_seed(self):
        registry = RngRegistry(root_seed=3)
        assert registry.seed_for("s") == derive_seed(3, "s")
