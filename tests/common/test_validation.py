"""Tests for repro.common.validation."""

import pytest

from repro.common.errors import ValidationError
from repro.common.validation import (
    require,
    require_in_range,
    require_non_empty,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never shown")

    def test_raises_on_false(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_returns_value(self):
        assert require_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="x"):
            require_positive(bad, "x")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, "p", 0.0, 1.0) == 0.0
        assert require_in_range(1.0, "p", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            require_in_range(0.0, "p", 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            require_in_range(1.5, "p", 0.0, 1.0)


class TestRequireNonEmpty:
    def test_accepts_non_empty(self):
        assert require_non_empty([1], "xs") == [1]

    @pytest.mark.parametrize("empty", [[], "", {}, ()])
    def test_rejects_empty(self, empty):
        with pytest.raises(ValidationError):
            require_non_empty(empty, "xs")


class TestRequireType:
    def test_accepts_instance(self):
        assert require_type("s", str, "x") == "s"

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="must be str"):
            require_type(1, str, "x")
