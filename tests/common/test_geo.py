"""Tests for repro.common.geo."""

import math

from hypothesis import given, strategies as st

from repro.common.geo import LatLon, haversine_m, offset_latlon, project_local_m

SYRACUSE = LatLon(43.05, -76.15)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(SYRACUSE, SYRACUSE) == 0.0

    def test_known_distance_one_degree_latitude(self):
        north = LatLon(SYRACUSE.latitude + 1.0, SYRACUSE.longitude)
        distance = haversine_m(SYRACUSE, north)
        assert abs(distance - 111_195) < 300  # ~111.2 km per degree

    def test_symmetric(self):
        other = LatLon(43.1, -76.0)
        assert haversine_m(SYRACUSE, other) == haversine_m(other, SYRACUSE)


class TestProjection:
    def test_origin_projects_to_zero(self):
        assert project_local_m(SYRACUSE, SYRACUSE) == (0.0, 0.0)

    def test_offset_roundtrip(self):
        moved = offset_latlon(SYRACUSE, east_m=120.0, north_m=-40.0)
        x, y = project_local_m(moved, SYRACUSE)
        assert abs(x - 120.0) < 0.01
        assert abs(y + 40.0) < 0.01

    def test_projection_matches_haversine_locally(self):
        moved = offset_latlon(SYRACUSE, east_m=300.0, north_m=400.0)
        x, y = project_local_m(moved, SYRACUSE)
        euclidean = math.hypot(x, y)
        great_circle = haversine_m(SYRACUSE, moved)
        assert abs(euclidean - great_circle) < 1.0  # sub-metre at 500 m

    @given(
        east=st.floats(-2000, 2000),
        north=st.floats(-2000, 2000),
    )
    def test_roundtrip_property(self, east, north):
        moved = offset_latlon(SYRACUSE, east_m=east, north_m=north)
        x, y = project_local_m(moved, SYRACUSE)
        assert abs(x - east) < 0.5
        assert abs(y - north) < 0.5
