"""Tests for repro.common.clock."""

import pytest

from repro.common.clock import Clock, ManualClock, SystemClock
from repro.common.errors import ValidationError


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(start=5.0).now() == 5.0

    def test_defaults_to_zero(self):
        assert ManualClock().now() == 0.0

    def test_advance_moves_forward(self):
        clock = ManualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = ManualClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now() == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValidationError):
            ManualClock().advance(-0.1)

    def test_set_jumps_forward(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_rejects_past(self):
        clock = ManualClock(start=10.0)
        with pytest.raises(ValidationError):
            clock.set(9.0)

    def test_set_to_same_time_is_allowed(self):
        clock = ManualClock(start=3.0)
        clock.set(3.0)
        assert clock.now() == 3.0

    def test_satisfies_clock_protocol(self):
        assert isinstance(ManualClock(), Clock)


class TestSystemClock:
    def test_is_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_satisfies_clock_protocol(self):
        assert isinstance(SystemClock(), Clock)
