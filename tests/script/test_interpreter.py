"""Tests for the LuaLite interpreter semantics."""

import math

import pytest

from repro.common.errors import ScriptRuntimeError
from repro.script import Sandbox
from repro.script.interpreter import LuaTable


def run(source):
    return Sandbox().run(source)


class TestArithmetic:
    def test_basic_precedence(self):
        assert run("return 1 + 2 * 3 - 4 / 2") == 5.0

    def test_power_is_float(self):
        assert run("return 2 ^ 10") == 1024.0
        assert isinstance(run("return 2 ^ 2"), float)

    def test_lua_modulo_signs(self):
        assert run("return 7 % 3") == 1
        assert run("return -7 % 3") == 2
        assert run("return 7 % -3") == -2

    def test_division_always_float(self):
        assert run("return 10 / 4") == 2.5

    def test_division_by_zero_is_inf(self):
        assert run("return 1 / 0") == math.inf
        assert run("return -1 / 0") == -math.inf
        assert math.isnan(run("return 0 / 0"))

    def test_unary_minus(self):
        assert run("return -(3 + 4)") == -7

    def test_arithmetic_on_string_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("return 'a' + 1")


class TestTruthinessAndLogic:
    def test_only_nil_and_false_are_falsy(self):
        assert run("if 0 then return 'truthy' end") == "truthy"
        assert run("if '' then return 'truthy' end") == "truthy"
        assert run("if nil then return 'x' else return 'falsy' end") == "falsy"
        assert run("if false then return 'x' else return 'falsy' end") == "falsy"

    def test_and_or_return_operands(self):
        assert run("return 1 and 2") == 2
        assert run("return nil and 2") is None
        assert run("return nil or 'fallback'") == "fallback"
        assert run("return 1 or error_never_called()") == 1

    def test_not(self):
        assert run("return not nil") is True
        assert run("return not 0") is False


class TestComparison:
    def test_numeric(self):
        assert run("return 1 < 2") is True
        assert run("return 2 <= 2") is True
        assert run("return 3 > 4") is False

    def test_string_lexicographic(self):
        assert run("return 'abc' < 'abd'") is True

    def test_mixed_comparison_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("return 1 < 'a'")

    def test_equality_across_types_is_false(self):
        assert run("return 1 == '1'") is False
        assert run("return nil == false") is False

    def test_int_float_equality(self):
        assert run("return 1 == 1.0") is True


class TestStrings:
    def test_concat_numbers(self):
        assert run("return 'v' .. 1 .. '.' .. 5") == "v1.5"

    def test_float_concat_format(self):
        assert run("return '' .. 1.0") == "1.0"

    def test_length(self):
        assert run("return #'hello'") == 5

    def test_concat_table_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("return {} .. 'x'")


class TestTables:
    def test_constructor_and_index(self):
        assert run("local t = {10, 20, 30} return t[2]") == 20

    def test_named_fields(self):
        assert run("local t = {a = 1, ['b'] = 2} return t.a + t.b") == 3

    def test_length_border(self):
        assert run("return #{1, 2, 3}") == 3
        assert run("local t = {1, 2, 3} t[5] = 5 return #t") == 3

    def test_nil_assignment_deletes(self):
        assert run("local t = {1, 2, 3} t[3] = nil return #t") == 2

    def test_float_keys_normalize(self):
        assert run("local t = {} t[1.0] = 'x' return t[1]") == "x"

    def test_nil_index_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("local t = {} t[nil] = 1")

    def test_index_non_table_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("local x = 3 return x.field")

    def test_nested_mutation(self):
        assert run("local t = {a = {b = 1}} t.a.b = t.a.b + 41 return t.a.b") == 42

    def test_missing_key_is_nil(self):
        assert run("local t = {} return t.missing") is None


class TestControlFlow:
    def test_while_with_break(self):
        source = """
        local total = 0
        local i = 0
        while true do
            i = i + 1
            if i > 100 then break end
            total = total + i
        end
        return total
        """
        assert run(source) == 5050

    def test_numeric_for(self):
        assert run("local s = 0 for i = 1, 10 do s = s + i end return s") == 55

    def test_for_with_step(self):
        assert run("local s = 0 for i = 10, 1, -2 do s = s + i end return s") == 30

    def test_for_zero_step_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("for i = 1, 2, 0 do end")

    def test_for_variable_scoped(self):
        assert run("for i = 1, 3 do end return i") is None

    def test_nested_loops_break_inner_only(self):
        source = """
        local count = 0
        for i = 1, 3 do
            for j = 1, 10 do
                if j == 2 then break end
                count = count + 1
            end
        end
        return count
        """
        assert run(source) == 3

    def test_elseif_chain(self):
        source = """
        local function grade(x)
            if x >= 90 then return 'A'
            elseif x >= 80 then return 'B'
            elseif x >= 70 then return 'C'
            else return 'F' end
        end
        return grade(85) .. grade(95) .. grade(10)
        """
        assert run(source) == "BAF"


class TestFunctions:
    def test_recursion(self):
        source = """
        local function fact(n)
            if n <= 1 then return 1 end
            return n * fact(n - 1)
        end
        return fact(10)
        """
        assert run(source) == 3628800

    def test_closures_capture_environment(self):
        source = """
        local function counter()
            local n = 0
            return function()
                n = n + 1
                return n
            end
        end
        local c = counter()
        c()
        c()
        return c()
        """
        assert run(source) == 3

    def test_missing_arguments_are_nil(self):
        assert run("local function f(a, b) return b end return f(1)") is None

    def test_extra_arguments_ignored(self):
        assert run("local function f(a) return a end return f(1, 2, 3)") == 1

    def test_functions_are_values(self):
        source = """
        local function apply(f, x) return f(x) end
        return apply(function(v) return v * 2 end, 21)
        """
        assert run(source) == 42

    def test_calling_non_function_raises(self):
        with pytest.raises(ScriptRuntimeError):
            run("local x = 5 return x()")

    def test_global_function_declaration(self):
        assert run("function g() return 7 end return g()") == 7


class TestSafety:
    def test_step_budget_stops_infinite_loop(self):
        with pytest.raises(ScriptRuntimeError, match="step budget"):
            Sandbox(max_steps=5_000).run("while true do end")

    def test_deep_recursion_hits_budget_not_crash(self):
        source = """
        local function loop(n) return loop(n + 1) end
        return loop(0)
        """
        with pytest.raises((ScriptRuntimeError, RecursionError)):
            Sandbox(max_steps=100_000).run(source)


class TestLuaTable:
    def test_to_python_list(self):
        table = LuaTable({1: "a", 2: "b"})
        assert table.to_python() == ["a", "b"]

    def test_to_python_dict_when_mixed(self):
        table = LuaTable({1: "a", "k": "v"})
        assert table.to_python() == {1: "a", "k": "v"}

    def test_identity_equality(self):
        assert LuaTable({1: 1}) != LuaTable({1: 1})
        table = LuaTable()
        assert table == table
