"""Tests for the LuaLite lexer."""

import pytest

from repro.common.errors import ScriptSyntaxError
from repro.script.lexer import TokenKind, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]  # drop EOF


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float(self):
        assert tokenize("3.5")[0].value == 3.5

    def test_scientific(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("1E+2")[0].value == 100.0

    def test_integer_followed_by_dot_dot(self):
        # `1..2` is concat of 1 and 2, not a malformed float.
        assert values("1 .. 2") == [1, "..", 2]

    def test_method_call_not_float(self):
        assert values("x.y") == ["x", ".", "y"]


class TestStrings:
    def test_double_quoted(self):
        assert tokenize('"hi"')[0].value == "hi"

    def test_single_quoted(self):
        assert tokenize("'hi'")[0].value == "hi"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\\d\"e"')[0].value == 'a\nb\tc\\d"e'

    def test_unterminated_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize('"open')

    def test_newline_inside_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize('"a\nb"')

    def test_unknown_escape_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize(r'"\q"')


class TestNamesAndKeywords:
    def test_keywords_recognized(self):
        for word in ("if", "then", "else", "end", "while", "for", "local",
                     "function", "return", "and", "or", "not", "nil", "true",
                     "false", "break", "do", "elseif"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD

    def test_identifier(self):
        token = tokenize("get_light_readings")[0]
        assert token.kind is TokenKind.NAME
        assert token.value == "get_light_readings"

    def test_identifier_with_digits(self):
        assert tokenize("x2y")[0].value == "x2y"


class TestOperators:
    def test_multichar_before_single(self):
        assert values("== ~= <= >= .. =") == ["==", "~=", "<=", ">=", "..", "="]

    def test_all_single_chars(self):
        source = "+ - * / % ^ # < > ( ) { } [ ] , ; ."
        assert values(source) == source.split()

    def test_unknown_character_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize("@")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert values("1 -- comment here\n2") == [1, 2]

    def test_comment_at_eof(self):
        assert values("1 -- trailing") == [1]

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[0].kind is TokenKind.EOF
