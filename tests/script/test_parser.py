"""Tests for the LuaLite parser."""

import pytest

from repro.common.errors import ScriptSyntaxError
from repro.script import ast_nodes as ast
from repro.script.parser import parse


def only_statement(source):
    block = parse(source)
    assert len(block.statements) == 1
    return block.statements[0]


class TestStatements:
    def test_local_single(self):
        statement = only_statement("local x = 1")
        assert isinstance(statement, ast.LocalAssign)
        assert statement.names == ("x",)

    def test_local_multiple(self):
        statement = only_statement("local a, b = 1, 2")
        assert statement.names == ("a", "b")
        assert len(statement.values) == 2

    def test_local_without_value(self):
        statement = only_statement("local x")
        assert statement.values == ()

    def test_assignment_to_name(self):
        statement = only_statement("x = 1")
        assert isinstance(statement, ast.Assign)
        assert isinstance(statement.targets[0], ast.Name)

    def test_assignment_to_index(self):
        statement = only_statement("t.x = 1")
        assert isinstance(statement.targets[0], ast.Index)

    def test_multiple_assignment(self):
        statement = only_statement("a, b = b, a")
        assert len(statement.targets) == 2

    def test_call_statement(self):
        statement = only_statement("f(1)")
        assert isinstance(statement, ast.ExpressionStatement)

    def test_bare_expression_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("1 + 2")

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("f() = 3")

    def test_if_elseif_else(self):
        statement = only_statement(
            "if a then f() elseif b then g() else h() end"
        )
        assert isinstance(statement, ast.If)
        assert len(statement.branches) == 2
        assert statement.otherwise is not None

    def test_while(self):
        statement = only_statement("while x < 3 do f() end")
        assert isinstance(statement, ast.While)

    def test_numeric_for_with_step(self):
        statement = only_statement("for i = 1, 10, 2 do f() end")
        assert isinstance(statement, ast.NumericFor)
        assert statement.step is not None

    def test_numeric_for_without_step(self):
        assert only_statement("for i = 1, 10 do f() end").step is None

    def test_function_declaration(self):
        statement = only_statement("function f(a, b) return a end")
        assert isinstance(statement, ast.FunctionDecl)
        assert not statement.is_local
        assert statement.function.parameters == ("a", "b")

    def test_local_function(self):
        assert only_statement("local function f() end").is_local

    def test_return_value_optional(self):
        assert only_statement("return").value is None
        assert only_statement("return 5").value is not None

    def test_break(self):
        statement = parse("while true do break end").statements[0]
        assert isinstance(statement.body.statements[0], ast.Break)

    def test_semicolons_tolerated(self):
        assert len(parse("f(); g();").statements) == 2

    def test_missing_end_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("if x then f()")


class TestExpressions:
    def expression(self, source):
        return only_statement(f"x = {source}").values[0]

    def test_precedence_mul_over_add(self):
        node = self.expression("1 + 2 * 3")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_power_right_associative(self):
        node = self.expression("2 ^ 3 ^ 2")
        assert node.operator == "^"
        assert node.right.operator == "^"

    def test_concat_right_associative(self):
        node = self.expression("'a' .. 'b' .. 'c'")
        assert node.operator == ".."
        assert node.right.operator == ".."

    def test_unary_minus_of_power(self):
        node = self.expression("-2 ^ 2")
        assert isinstance(node, ast.UnaryOp)
        assert node.operand.operator == "^"

    def test_comparison_below_concat(self):
        node = self.expression("'a' .. 'b' == 'ab'")
        assert node.operator == "=="

    def test_and_or_precedence(self):
        node = self.expression("a or b and c")
        assert node.operator == "or"
        assert node.right.operator == "and"

    def test_parentheses_override(self):
        node = self.expression("(1 + 2) * 3")
        assert node.operator == "*"
        assert node.left.operator == "+"

    def test_dot_index_sugar(self):
        node = self.expression("t.key")
        assert isinstance(node, ast.Index)
        assert isinstance(node.key, ast.StringLiteral)
        assert node.key.value == "key"

    def test_bracket_index(self):
        node = self.expression("t[1 + 1]")
        assert isinstance(node, ast.Index)
        assert isinstance(node.key, ast.BinaryOp)

    def test_chained_calls_and_indexes(self):
        node = self.expression("a.b(1).c[2]")
        assert isinstance(node, ast.Index)

    def test_string_call_sugar(self):
        node = self.expression("f 'arg'")
        assert isinstance(node, ast.Call)
        assert node.arguments[0].value == "arg"

    def test_anonymous_function(self):
        node = self.expression("function(x) return x end")
        assert isinstance(node, ast.FunctionExpr)

    def test_table_constructor_forms(self):
        node = self.expression("{1, x = 2, ['y'] = 3}")
        assert isinstance(node, ast.TableConstructor)
        assert len(node.fields) == 3
        assert node.fields[0].key is None

    def test_table_trailing_separator(self):
        node = self.expression("{1, 2,}")
        assert len(node.fields) == 2

    def test_unclosed_table_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("x = {1, 2")

    def test_length_operator(self):
        node = self.expression("#t")
        assert isinstance(node, ast.UnaryOp)
        assert node.operator == "#"
