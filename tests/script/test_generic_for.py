"""Tests for the generic for loop and pairs/ipairs."""

import pytest

from repro.common.errors import ScriptRuntimeError, ScriptSyntaxError
from repro.script import Sandbox
from repro.script.parser import parse


def run(source):
    return Sandbox().run(source)


class TestParsing:
    def test_generic_for_parses(self):
        from repro.script import ast_nodes as ast

        block = parse("for k, v in pairs(t) do f(k) end")
        statement = block.statements[0]
        assert isinstance(statement, ast.GenericFor)
        assert statement.names == ("k", "v")

    def test_single_name_allowed(self):
        parse("for v in ipairs(t) do f(v) end")

    def test_numeric_for_still_works(self):
        from repro.script import ast_nodes as ast

        block = parse("for i = 1, 3 do f(i) end")
        assert isinstance(block.statements[0], ast.NumericFor)

    def test_multiple_names_numeric_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("for a, b = 1, 3 do end")


class TestIpairs:
    def test_iterates_array_part_in_order(self):
        source = """
        local out = ''
        for i, v in ipairs({'a', 'b', 'c'}) do
            out = out .. i .. v
        end
        return out
        """
        assert run(source) == "1a2b3c"

    def test_stops_at_array_border(self):
        source = """
        local t = {'a', 'b'}
        t[5] = 'z'
        local count = 0
        for i, v in ipairs(t) do count = count + 1 end
        return count
        """
        assert run(source) == 2

    def test_single_variable_gets_index(self):
        assert run("local s = 0 for i in ipairs({9, 9, 9}) do s = s + i end return s") == 6

    def test_break_works(self):
        source = """
        local total = 0
        for i, v in ipairs({1, 2, 3, 4}) do
            if v == 3 then break end
            total = total + v
        end
        return total
        """
        assert run(source) == 3

    def test_non_table_rejected(self):
        with pytest.raises(ScriptRuntimeError, match="ipairs expects"):
            run("for i, v in ipairs(42) do end")


class TestPairs:
    def test_visits_every_entry(self):
        source = """
        local sum = 0
        for k, v in pairs({a = 1, b = 2, c = 3}) do
            sum = sum + v
        end
        return sum
        """
        assert run(source) == 6

    def test_keys_bound(self):
        source = """
        local keys = {}
        for k in pairs({x = 1, y = 1}) do
            table.insert(keys, k)
        end
        return #keys
        """
        assert run(source) == 2

    def test_table_sugar_without_pairs(self):
        # LuaLite extension: iterating the table directly equals pairs().
        source = """
        local sum = 0
        for k, v in {10, 20, 30} do sum = sum + v end
        return sum
        """
        assert run(source) == 60

    def test_non_iterable_rejected(self):
        with pytest.raises(ScriptRuntimeError, match="generic for"):
            run("for k in 5 do end")


class TestSensingUseCase:
    def test_aggregate_readings_by_sensor(self):
        sandbox = Sandbox()
        sandbox.register_function(
            "get_all_sensors", lambda: {"light": [1.0, 3.0], "noise": [5.0]}
        )
        source = """
        local sums = {}
        for sensor, readings in pairs(get_all_sensors()) do
            local total = 0
            for i, value in ipairs(readings) do
                total = total + value
            end
            sums[sensor] = total
        end
        return sums
        """
        assert sandbox.run_to_python(source) == {"light": 4.0, "noise": 5.0}
