"""Property-based semantic tests for LuaLite.

Random arithmetic/comparison/logic expressions are generated as ASTs,
rendered to source, executed in the sandbox, and compared against a
direct Python evaluation of the same AST (the reference model implements
Lua semantics: float division/modulo/power, truthiness, short-circuit
operands).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.script import Sandbox


# ----------------------------------------------------------------------
# expression model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: float

    def render(self) -> str:
        if self.value < 0:
            return f"({self.value!r})"
        return repr(self.value)

    def evaluate(self):
        return self.value


@dataclass(frozen=True)
class Bin:
    op: str
    left: "Expr"
    right: "Expr"

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self):
        a = self.left.evaluate()
        b = self.right.evaluate()
        if self.op == "and":
            return b if _truthy(a) else a
        if self.op == "or":
            return a if _truthy(a) else b
        if self.op == "==":
            return _num_eq(a, b)
        if self.op == "~=":
            return not _num_eq(a, b)
        if self.op in ("<", "<=", ">", ">="):
            a, b = _as_num(a), _as_num(b)
            return {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
            }[self.op]
        a, b = _as_num(a), _as_num(b)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                if a == 0:
                    return math.nan
                return math.inf if a > 0 else -math.inf
            return a / b
        if self.op == "%":
            if b == 0:
                return math.nan
            if math.isinf(a):
                return math.nan
            result = math.fmod(a, b)
            if result != 0 and (result < 0) != (b < 0):
                result += b
            return result
        raise AssertionError(self.op)


Expr = "Num | Bin"


def _truthy(value) -> bool:
    return value is not None and value is not False


def _num_eq(a, b) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    return float(a) == float(b)


def _as_num(value):
    assert isinstance(value, (int, float)) and not isinstance(value, bool), value
    return value


# Numbers kept small and non-pathological so both evaluators stay exact.
numbers = st.one_of(
    st.integers(-20, 20).map(float).map(Num),
    st.floats(-20, 20, allow_nan=False).map(lambda v: Num(round(v, 3))),
)

arith_ops = st.sampled_from(["+", "-", "*", "/", "%"])


def arith_exprs(depth: int):
    if depth == 0:
        return numbers
    sub = arith_exprs(depth - 1)
    return st.one_of(
        numbers,
        st.builds(Bin, arith_ops, sub, sub),
    )


compare_ops = st.sampled_from(["==", "~=", "<", "<=", ">", ">="])
logic_ops = st.sampled_from(["and", "or"])


@st.composite
def full_exprs(draw):
    left = draw(arith_exprs(2))
    right = draw(arith_exprs(2))
    comparison = Bin(draw(compare_ops), left, right)
    if draw(st.booleans()):
        other = Bin(draw(compare_ops), draw(arith_exprs(1)), draw(arith_exprs(1)))
        return Bin(draw(logic_ops), comparison, other)
    return comparison


def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        return a == pytest.approx(b, rel=1e-12, abs=1e-12)
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == pytest.approx(float(b), rel=1e-12, abs=1e-12)
    return a == b


class TestArithmeticFuzz:
    @settings(max_examples=200, deadline=None)
    @given(expr=arith_exprs(3))
    def test_arithmetic_matches_reference(self, expr):
        got = Sandbox().run(f"return {expr.render()}")
        expected = expr.evaluate()
        assert _same(got, expected), expr.render()

    @settings(max_examples=150, deadline=None)
    @given(expr=full_exprs())
    def test_comparisons_and_logic_match_reference(self, expr):
        got = Sandbox().run(f"return {expr.render()}")
        expected = expr.evaluate()
        assert _same(got, expected), expr.render()


class TestRoundTripStability:
    @settings(max_examples=100, deadline=None)
    @given(expr=arith_exprs(3))
    def test_idempotent_across_sandboxes(self, expr):
        """The same source always evaluates to the same value."""
        source = f"return {expr.render()}"
        first = Sandbox().run(source)
        second = Sandbox().run(source)
        assert _same(first, second)
