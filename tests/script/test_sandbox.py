"""Tests for the sandbox: whitelist, stdlib, host bridging."""

import pytest

from repro.common.errors import ScriptRuntimeError, ScriptSecurityError
from repro.script import Sandbox


class TestWhitelist:
    def test_unknown_global_call_is_security_error(self):
        with pytest.raises(ScriptSecurityError, match="not whitelisted"):
            Sandbox().run("return os_execute('rm -rf /')")

    def test_registered_function_callable(self):
        sandbox = Sandbox()
        sandbox.register_function("get_answer", lambda: 42)
        assert sandbox.run("return get_answer()") == 42

    def test_python_none_import_blocked_by_design(self):
        # There is simply no import/require construct in LuaLite.
        with pytest.raises(Exception):
            Sandbox().run("require('os')")

    def test_registered_value_visible(self):
        sandbox = Sandbox()
        sandbox.register_value("config", {"samples": 5})
        assert sandbox.run("return config.samples") == 5


class TestBridge:
    def test_list_return_becomes_lua_table(self):
        sandbox = Sandbox()
        sandbox.register_function("get_readings", lambda n: [1.0] * int(n))
        assert sandbox.run("return #get_readings(4)") == 4

    def test_dict_return_becomes_lua_table(self):
        sandbox = Sandbox()
        sandbox.register_function("info", lambda: {"a": 1})
        assert sandbox.run("return info().a") == 1

    def test_table_argument_becomes_python(self):
        received = []
        sandbox = Sandbox()
        sandbox.register_function("sink", received.append)
        sandbox.run("sink({1, 2, x = 'y'})")
        assert received == [{1: 1, 2: 2, "x": "y"}]

    def test_run_to_python_converts(self):
        assert Sandbox().run_to_python("return {1, {a = 2}}") == [1, {"a": 2}]

    def test_wrong_arity_is_runtime_error(self):
        sandbox = Sandbox()
        sandbox.register_function("one_arg", lambda a: a)
        with pytest.raises(ScriptRuntimeError):
            sandbox.run("return one_arg(1, 2, 3)")


class TestStdlib:
    def test_math(self):
        sandbox = Sandbox()
        assert sandbox.run("return math.floor(3.7)") == 3
        assert sandbox.run("return math.ceil(3.2)") == 4
        assert sandbox.run("return math.abs(-5)") == 5
        assert sandbox.run("return math.sqrt(16)") == 4.0
        assert sandbox.run("return math.min(3, 1, 2)") == 1
        assert sandbox.run("return math.max(3, 1, 2)") == 3
        assert sandbox.run("return math.pi") == pytest.approx(3.14159, abs=1e-4)

    def test_string(self):
        sandbox = Sandbox()
        assert sandbox.run("return string.len('abc')") == 3
        assert sandbox.run("return string.sub('hello', 2, 4)") == "ell"
        assert sandbox.run("return string.sub('hello', -3)") == "llo"
        assert sandbox.run("return string.upper('abc')") == "ABC"
        assert sandbox.run("return string.rep('ab', 3)") == "ababab"

    def test_table_helpers(self):
        sandbox = Sandbox()
        source = """
        local t = {}
        table.insert(t, 'a')
        table.insert(t, 'b')
        table.insert(t, 'c')
        table.remove(t, 1)
        return table.concat(t, '-')
        """
        assert sandbox.run(source) == "b-c"

    def test_tostring_tonumber(self):
        sandbox = Sandbox()
        assert sandbox.run("return tostring(nil)") == "nil"
        assert sandbox.run("return tostring(true)") == "true"
        assert sandbox.run("return tonumber('42')") == 42
        assert sandbox.run("return tonumber('3.5')") == 3.5
        assert sandbox.run("return tonumber('nope')") is None

    def test_type(self):
        sandbox = Sandbox()
        assert sandbox.run("return type(nil)") == "nil"
        assert sandbox.run("return type(1)") == "number"
        assert sandbox.run("return type('s')") == "string"
        assert sandbox.run("return type({})") == "table"
        assert sandbox.run("return type(print)") == "function"

    def test_print_captured(self):
        sandbox = Sandbox()
        sandbox.run("print('hello', 42)")
        assert sandbox.printed_lines == ["hello\t42"]

    def test_assert(self):
        sandbox = Sandbox()
        assert sandbox.run("return assert(42)") == 42
        with pytest.raises(ScriptRuntimeError, match="custom"):
            sandbox.run("assert(false, 'custom')")


class TestSensingScript:
    """The shape of script the server actually ships (Fig. 4 style)."""

    def test_full_acquisition_script(self):
        sandbox = Sandbox()
        sandbox.register_function(
            "get_light_readings", lambda n, ms: [500.0 + i for i in range(int(n))]
        )
        sandbox.register_function("get_location", lambda: [43.05, -76.15, 120.0])
        source = """
        -- take 5 light readings, 100 ms apart
        local light = get_light_readings(5, 100)
        local total = 0
        for i = 1, #light do
            total = total + light[i]
        end
        local loc = get_location()
        return {
            mean_light = total / #light,
            latitude = loc[1],
            longitude = loc[2],
        }
        """
        result = sandbox.run_to_python(source)
        assert result["mean_light"] == 502.0
        assert result["latitude"] == 43.05
