"""Exporter formats: Prometheus text exposition and the JSON dict."""

import json

import pytest

from repro.common.clock import ManualClock
from repro.obs import CONTENT_TYPE, MetricsRegistry, to_dict, to_prometheus_text


@pytest.fixture
def registry():
    return MetricsRegistry(clock=ManualClock(start=0.0))


class TestPrometheusText:
    def test_counter_lines(self, registry):
        counter = registry.counter("sor_req_total", help="Requests handled.")
        counter.inc(3)
        text = to_prometheus_text(registry)
        assert "# HELP sor_req_total Requests handled." in text
        assert "# TYPE sor_req_total counter" in text
        assert "sor_req_total 3" in text
        assert text.endswith("\n")

    def test_labelled_series(self, registry):
        counter = registry.counter("sor_req_total", labels=("type", "status"))
        counter.inc(type="ping", status="ok")
        text = to_prometheus_text(registry)
        assert 'sor_req_total{type="ping",status="ok"} 1' in text

    def test_label_values_escaped(self, registry):
        counter = registry.counter("sor_req_total", labels=("path",))
        counter.inc(path='has "quotes" and \\slash\\ and\nnewline')
        text = to_prometheus_text(registry)
        assert '\\"quotes\\"' in text
        assert "\\\\slash\\\\" in text
        assert "\\n" in text

    def test_help_escaped(self, registry):
        registry.counter("sor_a_total", help="line one\nline two").inc()
        text = to_prometheus_text(registry)
        assert "# HELP sor_a_total line one\\nline two" in text

    def test_histogram_buckets_sum_count(self, registry):
        hist = registry.histogram("sor_cost", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = to_prometheus_text(registry)
        assert 'sor_cost_bucket{le="1"} 1' in text
        assert 'sor_cost_bucket{le="10"} 2' in text
        assert 'sor_cost_bucket{le="+Inf"} 2' in text
        assert "sor_cost_sum 5.5" in text
        assert "sor_cost_count 2" in text

    def test_empty_registry_is_empty_string(self, registry):
        assert to_prometheus_text(registry) == ""

    def test_metrics_sorted_by_name(self, registry):
        registry.counter("sor_b_total").inc()
        registry.counter("sor_a_total").inc()
        text = to_prometheus_text(registry)
        assert text.index("sor_a_total") < text.index("sor_b_total")

    def test_content_type_constant(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE


class TestJsonDict:
    def test_structure_and_serialisable(self, registry):
        registry.counter("sor_req_total", help="Requests.", labels=("type",)).inc(
            2, type="ping"
        )
        gauge = registry.gauge("sor_coverage")
        gauge.set(0.9)
        hist = registry.histogram("sor_cost", buckets=(1.0,))
        hist.observe(0.5)
        snapshot = to_dict(registry)
        json.dumps(snapshot)  # must round-trip through JSON

        counter = snapshot["sor_req_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "Requests."
        (series,) = counter["series"]
        assert series == {"labels": {"type": "ping"}, "value": 2.0}

        (gauge_series,) = snapshot["sor_coverage"]["series"]
        assert gauge_series["value"] == 0.9

        (hist_series,) = snapshot["sor_cost"]["series"]
        assert hist_series["count"] == 1
        assert hist_series["sum"] == 0.5
        assert hist_series["buckets"] == {"1": 1, "+Inf": 1}
