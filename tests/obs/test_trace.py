"""Span lifecycle: nesting, timing, exceptions and the finished ring."""

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ObservabilityError
from repro.obs import NullTracer, Tracer


@pytest.fixture
def clock():
    return ManualClock(start=1_000.0)


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpanLifecycle:
    def test_records_start_end_and_duration(self, tracer, clock):
        with tracer.span("work"):
            clock.advance(2.5)
        (record,) = tracer.finished()
        assert record.name == "work"
        assert record.start == 1_000.0
        assert record.end == 1_002.5
        assert record.duration == pytest.approx(2.5)

    def test_durations_monotone_under_advancing_clock(self, tracer, clock):
        for step in (0.1, 0.2, 0.3):
            with tracer.span("step"):
                clock.advance(step)
        records = tracer.finished()
        durations = [r.duration for r in records]
        assert durations == sorted(durations)
        # end times never move backwards either
        ends = [r.end for r in records]
        assert ends == sorted(ends)

    def test_attributes_captured(self, tracer):
        with tracer.span("work", app_id="app-1") as span:
            span.set_attribute("budget", 30)
        (record,) = tracer.finished()
        assert record.attributes == {"app_id": "app-1", "budget": 30}


class TestNesting:
    def test_child_records_parent_id(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.active_span is inner
            assert tracer.active_span is outer
        inner_rec, outer_rec = tracer.finished()
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None

    def test_siblings_share_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.finished()
        assert a.parent_id == b.parent_id == outer.span_id

    def test_out_of_order_close_rejected(self, tracer):
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)


class TestExceptions:
    def test_exception_recorded_and_reraised(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (record,) = tracer.finished()
        assert "boom" in record.attributes["error"]

    def test_stack_unwinds_after_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("x")
        assert tracer.active_span is None
        assert len(tracer.finished()) == 2


class TestFinishedRing:
    def test_bounded(self, clock):
        tracer = Tracer(clock=clock, max_finished=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [r.name for r in tracer.finished()]
        assert names == ["s7", "s8", "s9"]

    def test_export_and_reset(self, tracer, clock):
        with tracer.span("work", kind="test"):
            clock.advance(1.0)
        (exported,) = tracer.export()
        assert exported["name"] == "work"
        assert exported["duration"] == pytest.approx(1.0)
        assert exported["attributes"] == {"kind": "test"}
        tracer.reset()
        assert tracer.finished() == ()


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("work") as span:
            span.set_attribute("k", "v")
        assert tracer.finished() == ()
        assert tracer.active_span is None
