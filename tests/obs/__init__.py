"""Tests for the observability subsystem (metrics, traces, exporters)."""
