"""Semantics of counters, gauges, histograms, timers and the registry."""

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ObservabilityError
from repro.obs import MetricsRegistry, NullRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(clock=ManualClock(start=100.0))


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("sor_test_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("sor_test_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_labelled_series_are_independent(self, registry):
        counter = registry.counter("sor_req_total", labels=("type",))
        counter.inc(type="ping")
        counter.inc(3, type="push")
        assert counter.value(type="ping") == 1.0
        assert counter.value(type="push") == 3.0
        assert counter.value(type="never") == 0.0

    def test_cached_child_shares_series(self, registry):
        counter = registry.counter("sor_req_total", labels=("type",))
        child = counter.labels(type="ping")
        child.inc()
        child.inc()
        assert counter.value(type="ping") == 2.0

    def test_wrong_label_set_rejected(self, registry):
        counter = registry.counter("sor_req_total", labels=("type",))
        with pytest.raises(ObservabilityError):
            counter.inc(kind="ping")
        with pytest.raises(ObservabilityError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("sor_coverage")
        gauge.set(0.75)
        assert gauge.value() == 0.75
        gauge.inc(0.1)
        gauge.dec(0.05)
        assert gauge.value() == pytest.approx(0.8)

    def test_gauges_can_go_negative(self, registry):
        gauge = registry.gauge("sor_delta")
        gauge.dec(2.0)
        assert gauge.value() == -2.0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        hist = registry.histogram("sor_cost", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            hist.observe(value)
        child = hist.labels()
        cumulative = dict(child.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[5.0] == 2
        assert cumulative[10.0] == 3
        assert cumulative[float("inf")] == 4
        assert hist.count() == 4
        assert hist.total() == pytest.approx(110.5)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.histogram("sor_cost", buckets=(10.0, 1.0, 5.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("sor_dup", buckets=(1.0, 1.0))

    def test_cumulative_counts_never_decrease(self, registry):
        hist = registry.histogram("sor_cost", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.6, 7.0, 20.0):
            hist.observe(value)
        counts = [count for _, count in hist.labels().cumulative_buckets()]
        assert counts == sorted(counts)
        bounds = [bound for bound, _ in hist.labels().cumulative_buckets()]
        assert bounds == [1.0, 5.0, 10.0, float("inf")]


class TestTimer:
    def test_records_clock_elapsed_seconds(self, registry):
        clock = registry.clock
        timer = registry.timer("sor_step_seconds")
        with timer.time():
            clock.advance(0.25)
        hist = registry.get("sor_step_seconds")
        assert hist.count() == 1
        assert hist.total() == pytest.approx(0.25)

    def test_observe_directly(self, registry):
        timer = registry.timer("sor_step_seconds")
        timer.observe(1.5)
        assert registry.get("sor_step_seconds").total() == pytest.approx(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("sor_a_total") is registry.counter("sor_a_total")

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("sor_a_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("sor_a_total")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("sor_a_total", labels=("type",))
        with pytest.raises(ObservabilityError):
            registry.counter("sor_a_total", labels=("kind",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("9starts-with-digit")
        with pytest.raises(ObservabilityError):
            registry.counter("sor_ok_total", labels=("bad-label",))

    def test_reset_clears_series_keeps_registration(self, registry):
        counter = registry.counter("sor_a_total")
        counter.inc(5)
        registry.reset()
        assert registry.get("sor_a_total") is counter
        assert counter.value() == 0.0

    def test_collect_sorted_by_name(self, registry):
        registry.counter("sor_b_total")
        registry.counter("sor_a_total")
        assert [m.name for m in registry.collect()] == ["sor_a_total", "sor_b_total"]


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        null = NullRegistry()
        counter = null.counter("anything")
        counter.inc(7, type="x")
        assert counter.value() == 0.0
        gauge = null.gauge("g")
        gauge.set(3)
        gauge.dec()
        hist = null.histogram("h")
        hist.observe(1.0)
        assert hist.count() == 0
        timer = null.timer("t")
        with timer.time():
            pass


class TestQuantile:
    def test_nan_with_no_observations(self, registry):
        hist = registry.histogram("sor_q", buckets=[1.0, 2.0, 4.0])
        import math

        assert math.isnan(hist.quantile(0.5))

    def test_interpolates_within_bucket(self, registry):
        hist = registry.histogram("sor_q", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        # rank 2 of 4 lands exactly at the (1,2] bucket's cumulative
        # count boundary... interpolate: p50 rank=2, cumulative (1.0,1),
        # (2.0,3): 1 + (2-1)/(3-1) * (2-1) = 1.5
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_clamps_to_highest_finite_bound(self, registry):
        hist = registry.histogram("sor_q", buckets=[1.0, 2.0])
        hist.observe(100.0)  # +Inf bucket only
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_rejects_out_of_range(self, registry):
        hist = registry.histogram("sor_q", buckets=[1.0])
        hist.observe(0.5)  # a child must exist for validation to run
        with pytest.raises(ObservabilityError):
            hist.quantile(1.5)


class TestThreadSafety:
    """Many threads hammering one metric must not lose updates."""

    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, work):
        import threading

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_concurrent_counter_incs(self, registry):
        counter = registry.counter("sor_conc_total", labels=("kind",))

        def work():
            for _ in range(self.PER_THREAD):
                counter.inc(kind="a")

        self._hammer(work)
        assert counter.value(kind="a") == self.THREADS * self.PER_THREAD

    def test_concurrent_histogram_observes(self, registry):
        hist = registry.histogram("sor_conc_hist", buckets=[1.0, 2.0, 4.0])

        def work():
            for index in range(self.PER_THREAD):
                hist.observe(float(index % 5))

        self._hammer(work)
        expected_n = self.THREADS * self.PER_THREAD
        assert hist.count() == expected_n
        # sum of 0+1+2+3+4 per 5 observations, no torn adds
        assert hist.total() == pytest.approx(expected_n / 5 * 10)

    def test_concurrent_child_creation(self, registry):
        counter = registry.counter("sor_conc_children_total", labels=("k",))

        def work():
            for index in range(self.PER_THREAD):
                counter.inc(k=str(index % 16))

        self._hammer(work)
        total = sum(counter.value(k=str(k)) for k in range(16))
        assert total == self.THREADS * self.PER_THREAD
