"""Integration: GET /metrics reflects real server traffic.

A fresh registry is injected into Network + SensingServer (never the
process-global one) so these tests stay isolated from each other and
from the rest of the suite.
"""

import numpy as np
import pytest

from repro.common.clock import ManualClock
from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.net import CloudMessenger, Envelope, HttpRequest, MessageType, NetworkConditions
from repro.net.transport import Network
from repro.obs import CONTENT_TYPE, MetricsRegistry
from repro.server import SensingServer
from repro.server.app_manager import Application

PLACE = LatLon(43.05, -76.15)


@pytest.fixture
def world():
    registry = MetricsRegistry(clock=ManualClock(start=0.0))
    clock = ManualClock(start=10.0)
    network = Network(
        conditions=NetworkConditions(),
        rng=np.random.default_rng(0),
        metrics=registry,
    )
    server = SensingServer(
        "server", network, clock, gcm=CloudMessenger(), metrics=registry
    )
    server.register_user("alice", "Alice", "tok-a")
    server.create_application(
        Application(
            app_id="app-1",
            creator="owner",
            place_id="place-1",
            place_name="Place One",
            category="coffee_shop",
            location=PLACE,
            script="return get_temperature_readings(2, 1.0)",
            pipeline=FeaturePipeline(
                [FeatureSpec("temperature", "temperature", MeanExtractor())]
            ),
            period_start=0.0,
            period_end=10_800.0,
        )
    )
    return registry, network, server


def scrape(network):
    response = network.send(HttpRequest("GET", "server", "/metrics"))
    assert response.ok
    assert response.headers["Content-Type"] == CONTENT_TYPE
    return response.body.decode("utf-8")


def post(network, envelope):
    response = network.send(HttpRequest("POST", "server", "/sor", envelope.to_bytes()))
    assert response.ok
    return Envelope.from_bytes(response.body)


def participate(network, *, budget=5):
    return post(
        network,
        Envelope(
            MessageType.PARTICIPATE,
            sender="phone-1",
            recipient="server",
            payload={
                "user_id": "alice",
                "token": "tok-a",
                "app_id": "app-1",
                "place_id": "place-1",
                "latitude": PLACE.latitude,
                "longitude": PLACE.longitude,
                "budget": budget,
            },
        ),
    )


def upload(network, task_id):
    return post(
        network,
        Envelope(
            MessageType.SENSED_DATA,
            sender="phone-1",
            recipient="server",
            payload={
                "task_id": task_id,
                "token": "tok-a",
                "status": "finished",
                "error": "",
                "bursts": [
                    {"sensor": "temperature", "t": 100.0, "dt": 1.0,
                     "values": [70.0, 72.0]}
                ],
            },
        ),
    )


class TestMetricsEndpoint:
    def test_scrape_before_traffic_omits_request_series(self, world):
        registry, network, _ = world
        text = scrape(network)
        # /metrics itself is not counted as a sor_server request series
        assert 'sor_server_requests_total{type="participate"' not in text

    def test_participate_shows_up_in_scrape(self, world):
        registry, network, _ = world
        reply = participate(network)
        assert reply.message_type is MessageType.SCHEDULE
        text = scrape(network)
        assert 'sor_server_requests_total{type="participate",status="200"} 1' in text
        # scheduling ran: instants were evaluated and assigned
        assert registry.get("sor_scheduler_tasks_total").value() == 1
        assert registry.get("sor_scheduler_instants_assigned_total").value() == 5
        assert registry.get("sor_scheduler_instants_evaluated_total").value() > 0
        # request latency histogram saw exactly one request
        assert registry.get("sor_server_request_seconds").count() == 1

    def test_counters_increase_with_more_traffic(self, world):
        registry, network, _ = world
        task_id = participate(network).payload["task_id"]
        first = registry.get("sor_server_requests_total").value(
            type="participate", status="200"
        )
        sensed_before = registry.get("sor_server_sensed_envelopes_total").value()

        upload(network, task_id)
        text = scrape(network)
        assert registry.get("sor_server_sensed_envelopes_total").value() == (
            sensed_before + 1
        )
        assert 'sor_server_requests_total{type="sensed_data",status="200"} 1' in text
        assert registry.get("sor_server_requests_total").value(
            type="participate", status="200"
        ) == first

    def test_db_and_network_instrumented(self, world):
        registry, network, _ = world
        task_id = participate(network).payload["task_id"]
        upload(network, task_id)
        ops = registry.get("sor_db_operations_total")
        assert ops.value(db="server", table="raw_data", op="insert") >= 1
        assert ops.value(db="server", table="tasks", op="insert") >= 1
        net_bytes = registry.get("sor_net_bytes_sent_total")
        assert net_bytes.value() > 0

    def test_scrape_is_valid_prometheus_text(self, world):
        registry, network, _ = world
        participate(network)
        text = scrape(network)
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line
        # every series line is "name{labels} value" with a parseable value
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            value = line.rsplit(" ", 1)[1]
            float(value)  # must parse
