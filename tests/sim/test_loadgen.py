"""Loadgen determinism + the CI comparison tool.

The load-smoke CI job leans on two properties tested here:

* the workload is a pure function of the spec's seed — two runs produce
  the same digest and the same request counters, so a gate failure is a
  code change, not noise in the generator;
* execution shape (sequential vs concurrent, client/worker counts) does
  not change *what* is sent, only how fast — the sequential baseline in
  the speedup comparison answers the same workload.

``compare_bench.py`` is exercised directly (loaded from the benchmarks
directory) since a wrong comparison silently green-lights regressions.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.sim.arrivals import fixed_count_arrivals
from repro.sim.loadgen import (
    LoadgenSpec,
    build_workload,
    run_comparison,
    run_loadgen,
    workload_digest,
)

SMALL = dict(phones=48, seed=7, clients=4, workers=4, io_delay_s=0.0)


# ----------------------------------------------------------------------
# arrival process
# ----------------------------------------------------------------------
class TestFixedCountArrivals:
    def test_shape_and_bounds(self) -> None:
        users = fixed_count_arrivals(
            100, 3600.0, 5, np.random.default_rng(0), mean_dwell_s=600.0
        )
        assert len(users) == 100
        arrivals = [user.arrival for user in users]
        assert arrivals == sorted(arrivals)
        for user in users:
            assert 0.0 <= user.arrival <= 3600.0
            assert user.arrival <= user.departure <= 3600.0
            assert user.budget == 5
        assert len({user.user_id for user in users}) == 100

    def test_deterministic_under_seed(self) -> None:
        first = fixed_count_arrivals(50, 1000.0, 3, np.random.default_rng(42))
        second = fixed_count_arrivals(50, 1000.0, 3, np.random.default_rng(42))
        assert first == second

    def test_validation(self) -> None:
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            fixed_count_arrivals(0, 100.0, 1, rng)
        with pytest.raises(ValidationError):
            fixed_count_arrivals(10, 0.0, 1, rng)
        with pytest.raises(ValidationError):
            fixed_count_arrivals(10, 100.0, -1, rng)
        with pytest.raises(ValidationError):
            fixed_count_arrivals(10, 100.0, 1, rng, mean_dwell_s=0.0)


# ----------------------------------------------------------------------
# workload determinism
# ----------------------------------------------------------------------
def test_workload_digest_is_deterministic() -> None:
    spec = LoadgenSpec(**SMALL)
    digest_a = workload_digest(spec, build_workload(spec))
    digest_b = workload_digest(spec, build_workload(spec))
    assert digest_a == digest_b
    other = LoadgenSpec(**{**SMALL, "seed": 8})
    assert workload_digest(other, build_workload(other)) != digest_a


def test_digest_ignores_execution_shape() -> None:
    """Same phones+seed = same workload no matter how it is driven."""
    concurrent = LoadgenSpec(**SMALL, mode="concurrent")
    sequential = LoadgenSpec(
        **{**SMALL, "clients": 1, "workers": 1}, mode="sequential"
    )
    assert workload_digest(
        concurrent, build_workload(concurrent)
    ) == workload_digest(sequential, build_workload(sequential))


def test_run_loadgen_is_deterministic() -> None:
    spec = LoadgenSpec(**SMALL)
    first = run_loadgen(spec)
    second = run_loadgen(spec)
    assert first.workload_digest == second.workload_digest
    assert first.requests_by_type == second.requests_by_type
    assert first.requests_ok == second.requests_ok
    assert first.sessions_completed == spec.phones
    assert first.error_replies == 0
    assert first.replay_mismatches == 0


def test_sequential_and_concurrent_send_the_same_traffic() -> None:
    concurrent, sequential, speedup = run_comparison(LoadgenSpec(**SMALL))
    assert concurrent.requests_by_type == sequential.requests_by_type
    assert concurrent.requests_ok == sequential.requests_ok
    assert concurrent.sessions_completed == sequential.sessions_completed
    assert concurrent.workload_digest == sequential.workload_digest
    assert speedup > 0.0


def test_report_round_trips_to_json() -> None:
    report = run_loadgen(LoadgenSpec(**{**SMALL, "phones": 16}))
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["workload_digest"] == report.workload_digest
    assert payload["sessions_completed"] == 16
    assert payload["spec"]["phones"] == 16


def test_spec_validation() -> None:
    with pytest.raises(ValidationError):
        LoadgenSpec(phones=0)
    with pytest.raises(ValidationError):
        LoadgenSpec(mode="warp")
    with pytest.raises(ValidationError):
        LoadgenSpec(clients=0)
    with pytest.raises(ValidationError):
        LoadgenSpec(io_delay_s=-0.1)


# ----------------------------------------------------------------------
# compare_bench.py — the regression gate itself
# ----------------------------------------------------------------------
def _load_compare_bench():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
    spec = importlib.util.spec_from_file_location("compare_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load_compare_bench()


def _write(path: Path, payload: dict) -> Path:
    path.write_text(json.dumps(payload))
    return path


class TestCompareBench:
    def test_loads_canonical_schema(self, tmp_path) -> None:
        path = _write(
            tmp_path / "canonical.json",
            {
                "metrics": {
                    "rps": {
                        "value": 1000.0,
                        "direction": "higher",
                        "tolerance_pct": 30,
                    }
                }
            },
        )
        metrics = compare_bench.load_metrics(path, 20.0)
        assert metrics == {
            "rps": {"value": 1000.0, "direction": "higher", "tolerance_pct": 30.0}
        }

    def test_loads_pytest_bench_schema(self, tmp_path) -> None:
        path = _write(
            tmp_path / "bench.json",
            {"test_sort": {"mean": 0.5, "rounds": 3}, "not_a_bench": "skip"},
        )
        metrics = compare_bench.load_metrics(path, 25.0)
        assert metrics == {
            "test_sort": {"value": 0.5, "direction": "lower", "tolerance_pct": 25.0}
        }

    def test_regression_pct_directions(self) -> None:
        # higher-is-better: dropping from 100 to 50 is a 50% regression.
        assert compare_bench.regression_pct("higher", 100.0, 50.0) == 50.0
        assert compare_bench.regression_pct("higher", 100.0, 120.0) == -20.0
        # lower-is-better: rising from 1.0 to 1.5 is a 50% regression.
        assert compare_bench.regression_pct("lower", 1.0, 1.5) == 50.0
        assert compare_bench.regression_pct("lower", 1.0, 0.5) == -50.0
        assert compare_bench.regression_pct("lower", 0.0, 5.0) == 0.0

    def test_compare_flags_regressions_and_missing(self) -> None:
        baseline = {
            "fast": {"value": 100.0, "direction": "higher", "tolerance_pct": 10.0},
            "slow": {"value": 1.0, "direction": "lower", "tolerance_pct": 10.0},
            "gone": {"value": 1.0, "direction": "lower", "tolerance_pct": 10.0},
        }
        fresh = {
            "fast": {"value": 50.0, "direction": "higher", "tolerance_pct": 10.0},
            "slow": {"value": 1.05, "direction": "lower", "tolerance_pct": 10.0},
            "extra": {"value": 3.0, "direction": "lower", "tolerance_pct": 10.0},
        }
        lines, failures = compare_bench.compare(baseline, fresh)
        assert len(failures) == 2  # fast regressed, gone missing
        assert any("fast" in failure for failure in failures)
        assert any("gone" in failure for failure in failures)
        assert any("no baseline" in line for line in lines)  # extra noted, not fatal

    def test_main_exit_codes(self, tmp_path) -> None:
        good = {
            "metrics": {
                "rps": {"value": 100.0, "direction": "higher", "tolerance_pct": 10}
            }
        }
        bad = {
            "metrics": {
                "rps": {"value": 10.0, "direction": "higher", "tolerance_pct": 10}
            }
        }
        baseline = _write(tmp_path / "baseline.json", good)
        fresh_ok = _write(tmp_path / "fresh_ok.json", good)
        fresh_bad = _write(tmp_path / "fresh_bad.json", bad)
        argv = ["--baseline", str(baseline), "--fresh", str(fresh_ok)]
        assert compare_bench.main(argv) == 0
        argv = ["--baseline", str(baseline), "--fresh", str(fresh_bad)]
        assert compare_bench.main(argv) == 1
        argv = ["--baseline", str(tmp_path / "nope.json"), "--fresh", str(fresh_ok)]
        assert compare_bench.main(argv) == 2
        argv += ["--allow-missing-baseline"]
        assert compare_bench.main(argv) == 0
        argv = ["--baseline", str(baseline), "--fresh", str(tmp_path / "nope.json")]
        assert compare_bench.main(argv) == 2
