"""Tests for the discrete-event engine."""

import pytest

from repro.common.errors import ValidationError
from repro.sim import Simulator
from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while len(queue):
            queue.pop()[1]()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("low"), priority=5)
        queue.push(1.0, lambda: order.append("high"), priority=0)
        while len(queue):
            queue.pop()[1]()
        assert order == ["high", "low"]

    def test_fifo_for_exact_ties(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append(1))
        queue.push(1.0, lambda: order.append(2))
        while len(queue):
            queue.pop()[1]()
        assert order == [1, 2]


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(5.0, lambda: seen.append(simulator.now()))
        simulator.run()
        assert seen == [5.0]

    def test_schedule_in_relative(self):
        simulator = Simulator(start_time=100.0)
        seen = []
        simulator.schedule_in(2.5, lambda: seen.append(simulator.now()))
        simulator.run()
        assert seen == [102.5]

    def test_events_can_schedule_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append("first")
            simulator.schedule_in(1.0, lambda: seen.append("second"))

        simulator.schedule_at(1.0, first)
        simulator.run()
        assert seen == ["first", "second"]

    def test_run_until_stops_and_advances_clock(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(1.0, lambda: seen.append(1))
        simulator.schedule_at(10.0, lambda: seen.append(10))
        simulator.run(until=5.0)
        assert seen == [1]
        assert simulator.now() == 5.0
        simulator.run()
        assert seen == [1, 10]

    def test_past_scheduling_rejected(self):
        simulator = Simulator(start_time=10.0)
        with pytest.raises(ValidationError):
            simulator.schedule_at(5.0, lambda: None)
        with pytest.raises(ValidationError):
            simulator.schedule_in(-1.0, lambda: None)

    def test_step(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        assert simulator.step() is True
        assert simulator.step() is False
        assert simulator.events_processed == 1
