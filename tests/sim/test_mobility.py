"""Tests for trail geometry and walkers."""

import math

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.geo import LatLon, haversine_m
from repro.sim import TrailPath, TrailWalker
from repro.sim.mobility import TrailPoint

ORIGIN = LatLon(43.0, -76.0)


def straight_trail(length=100.0, altitude=50.0):
    return TrailPath(
        ORIGIN,
        [
            TrailPoint(0.0, 0.0, altitude),
            TrailPoint(length, 0.0, altitude),
        ],
    )


class TestTrailPath:
    def test_length(self):
        assert straight_trail(250.0).length_m == pytest.approx(250.0)

    def test_position_interpolates(self):
        trail = straight_trail(100.0)
        fix = trail.position_at(50.0)
        start = trail.position_at(0.0)
        distance = haversine_m(
            LatLon(start.latitude, start.longitude),
            LatLon(fix.latitude, fix.longitude),
        )
        assert distance == pytest.approx(50.0, abs=0.1)

    def test_position_clamps(self):
        trail = straight_trail(100.0)
        assert trail.position_at(-10.0) == trail.position_at(0.0)
        assert trail.position_at(500.0) == trail.position_at(100.0)

    def test_altitude_interpolates(self):
        trail = TrailPath(
            ORIGIN,
            [TrailPoint(0, 0, 100.0), TrailPoint(100, 0, 200.0)],
        )
        assert trail.position_at(50.0).altitude_m == pytest.approx(150.0)

    def test_needs_two_points(self):
        with pytest.raises(ValidationError):
            TrailPath(ORIGIN, [TrailPoint(0, 0, 0)])

    def test_build_closed_loop_closes(self):
        trail = TrailPath.build(
            ORIGIN,
            length_m=1000.0,
            wiggle_amplitude_m=0.0,
            wiggle_period_m=0.0,
            altitude_amplitude_m=0.0,
            altitude_period_m=0.0,
            closed_loop=True,
        )
        first, last = trail.points[0], trail.points[-1]
        assert math.hypot(last.east_m - first.east_m, last.north_m - first.north_m) < 5.0

    def test_build_wiggle_increases_path_curvatureiness(self):
        flat = TrailPath.build(
            ORIGIN, length_m=500.0, wiggle_amplitude_m=0.0, wiggle_period_m=0.0,
            altitude_amplitude_m=0.0, altitude_period_m=0.0,
        )
        wiggly = TrailPath.build(
            ORIGIN, length_m=500.0, wiggle_amplitude_m=20.0, wiggle_period_m=100.0,
            altitude_amplitude_m=0.0, altitude_period_m=0.0,
        )
        # Wiggle moves points off the axis.
        assert max(abs(p.north_m) for p in wiggly.points) > 10.0
        assert max(abs(p.north_m) for p in flat.points) == 0.0

    def test_build_jitter_uses_rng(self):
        rng = np.random.default_rng(0)
        jittered = TrailPath.build(
            ORIGIN, length_m=200.0, wiggle_amplitude_m=0.0, wiggle_period_m=0.0,
            altitude_amplitude_m=0.0, altitude_period_m=0.0,
            rng=rng, wiggle_jitter=3.0,
        )
        assert any(p.north_m != 0.0 for p in jittered.points)


class TestTrailWalker:
    def test_position_advances_with_pace(self):
        walker = TrailWalker(straight_trail(1000.0), pace_m_per_s=2.0)
        fix_10 = walker.position(10.0)
        start = walker.position(0.0)
        assert haversine_m(
            LatLon(start.latitude, start.longitude),
            LatLon(fix_10.latitude, fix_10.longitude),
        ) == pytest.approx(20.0, abs=0.1)

    def test_before_start_stays_at_trailhead(self):
        walker = TrailWalker(straight_trail(), pace_m_per_s=1.0, start_time=100.0)
        assert walker.position(0.0) == walker.position(50.0)

    def test_clamp_mode_stops_at_end(self):
        walker = TrailWalker(straight_trail(100.0), pace_m_per_s=1.0, mode="clamp")
        assert walker.position(100.0) == walker.position(1e6)

    def test_loop_mode_wraps(self):
        trail = straight_trail(100.0)
        walker = TrailWalker(trail, pace_m_per_s=1.0, mode="loop")
        assert walker.position(150.0) == trail.position_at(50.0)

    def test_ping_pong_reflects(self):
        trail = straight_trail(100.0)
        walker = TrailWalker(trail, pace_m_per_s=1.0, mode="ping_pong")
        assert walker.position(150.0) == trail.position_at(50.0)
        assert walker.position(250.0) == trail.position_at(50.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            TrailWalker(straight_trail(), pace_m_per_s=0.0)
        with pytest.raises(ValidationError):
            TrailWalker(straight_trail(), pace_m_per_s=1.0, mode="teleport")
