"""Tests for scenario builders, arrivals and the field-test runner."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.sim.arrivals import poisson_arrivals, uniform_arrivals
from repro.sim.fieldtest import (
    BurstSettings,
    FieldTestConfig,
    build_providers,
    run_field_test,
)
from repro.sim.places import PlaceProfile
from repro.sim.scenarios import (
    FIELD_TEST_END_S,
    FIELD_TEST_START_S,
    customer_profiles,
    hiker_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
    syracuse_trails,
    trail_feature_pipeline,
)


class TestArrivals:
    def test_count_and_bounds(self, rng):
        users = uniform_arrivals(25, 10_800.0, 17, rng)
        assert len(users) == 25
        for user in users:
            assert 0.0 <= user.arrival <= user.departure <= 10_800.0
            assert user.budget == 17

    def test_unique_ids(self, rng):
        users = uniform_arrivals(10, 100.0, 1, rng)
        assert len({user.user_id for user in users}) == 10

    def test_reproducible(self):
        a = uniform_arrivals(5, 100.0, 1, np.random.default_rng(3))
        b = uniform_arrivals(5, 100.0, 1, np.random.default_rng(3))
        assert a == b

    def test_invalid_args(self, rng):
        with pytest.raises(ValidationError):
            uniform_arrivals(0, 100.0, 1, rng)
        with pytest.raises(ValidationError):
            uniform_arrivals(1, -5.0, 1, rng)


class TestPoissonArrivals:
    def test_bounds_and_budget(self, rng):
        users = poisson_arrivals(20.0, 10_800.0, 5, rng)
        for user in users:
            assert 0.0 <= user.arrival <= user.departure <= 10_800.0
            assert user.budget == 5

    def test_rate_scales_count(self):
        sparse = poisson_arrivals(2.0, 36_000.0, 1, np.random.default_rng(1))
        dense = poisson_arrivals(40.0, 36_000.0, 1, np.random.default_rng(1))
        assert len(dense) > len(sparse) * 5

    def test_schedulable(self, rng):
        """Poisson workloads feed straight into the scheduler."""
        from repro.core.scheduling import (
            GaussianKernel,
            GreedyScheduler,
            SchedulingPeriod,
            SchedulingProblem,
        )

        users = poisson_arrivals(15.0, 10_800.0, 10, rng)
        assert users, "expected at least one arrival at this rate"
        problem = SchedulingProblem(
            SchedulingPeriod(0.0, 10_800.0, 1080), users, GaussianKernel(10.0)
        )
        schedule = GreedyScheduler().solve(problem)
        schedule.validate()

    def test_invalid_args(self, rng):
        with pytest.raises(ValidationError):
            poisson_arrivals(0.0, 100.0, 1, rng)
        with pytest.raises(ValidationError):
            poisson_arrivals(1.0, 100.0, 1, rng, mean_dwell_s=0.0)


class TestScenarios:
    def test_three_trails_with_geometry(self, rng):
        trails = syracuse_trails(rng)
        assert [t.name for t in trails] == [
            "Green Lake Trail",
            "Long Trail",
            "Cliff Trail",
        ]
        for trail in trails:
            assert trail.category == "hiking_trail"
            assert trail.trail is not None
            assert trail.has_signal("temperature")
            assert trail.has_signal("humidity")

    def test_three_shops_with_signals(self, rng):
        shops = syracuse_coffee_shops(rng)
        assert [s.name for s in shops] == ["Tim Hortons", "B&N Cafe", "Starbucks"]
        for shop in shops:
            assert shop.trail is None
            for sensor in ("temperature", "drone_light", "microphone", "wifi"):
                assert shop.has_signal(sensor)

    def test_ground_truth_orderings(self, rng):
        """The scenario encodes the paper's qualitative ground truths."""
        shops = {s.name: s for s in syracuse_coffee_shops(rng)}
        t = 12 * 3600.0
        assert (
            shops["Starbucks"].signal("microphone").value(t)
            > shops["Tim Hortons"].signal("microphone").value(t)
        )
        assert (
            shops["Tim Hortons"].signal("drone_light").value(t)
            > shops["B&N Cafe"].signal("drone_light").value(t)
            > shops["Starbucks"].signal("drone_light").value(t)
        )

    def test_profiles_cover_their_pipelines(self):
        trail_features = trail_feature_pipeline().feature_names
        for profile in hiker_profiles():
            assert profile.covers(trail_features)
        shop_features = shop_feature_pipeline().feature_names
        for profile in customer_profiles():
            assert profile.covers(shop_features)

    def test_alice_profile_matches_paper(self):
        alice = next(p for p in hiker_profiles() if p.name == "Alice")
        for feature in ("roughness", "curvature", "altitude_change"):
            assert alice.weight(feature) == 5

    def test_place_signal_lookup_errors(self, rng):
        trail = syracuse_trails(rng)[0]
        with pytest.raises(ValidationError):
            trail.signal("geiger_counter")


class TestFieldTestConfig:
    def test_defaults_match_paper_window(self):
        config = FieldTestConfig()
        assert config.start_s == FIELD_TEST_START_S
        assert config.end_s == FIELD_TEST_END_S
        assert config.end_s - config.start_s == pytest.approx(3 * 3600.0)

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            FieldTestConfig(start_s=100.0, end_s=50.0)
        with pytest.raises(ValidationError):
            FieldTestConfig(phones=0)
        with pytest.raises(ValidationError):
            BurstSettings(count=0)


class TestRunFieldTest:
    def test_shop_features_close_to_ground_truth(self, rng):
        shop = syracuse_coffee_shops(rng)[0]  # Tim Hortons
        result = run_field_test(
            shop,
            shop_feature_pipeline(),
            FieldTestConfig(phones=4, budget=15),
            rng,
        )
        assert result.features["temperature"] == pytest.approx(66.0, abs=1.5)
        assert result.features["brightness"] == pytest.approx(800.0, abs=30.0)
        assert result.features["wifi"] == pytest.approx(-60.0, abs=2.0)

    def test_energy_accounted_per_phone(self, rng):
        shop = syracuse_coffee_shops(rng)[0]
        result = run_field_test(
            shop, shop_feature_pipeline(), FieldTestConfig(phones=3, budget=5), rng
        )
        assert len(result.energy_by_phone_mj) == 3
        assert all(energy > 0 for energy in result.energy_by_phone_mj.values())

    def test_bursts_carry_sources(self, rng):
        shop = syracuse_coffee_shops(rng)[0]
        result = run_field_test(
            shop, shop_feature_pipeline(), FieldTestConfig(phones=2, budget=3), rng
        )
        sources = {
            burst.source
            for bursts in result.bursts_by_sensor.values()
            for burst in bursts
        }
        assert len(sources) == 2

    def test_schedule_spreads_well(self, rng):
        shop = syracuse_coffee_shops(rng)[0]
        result = run_field_test(
            shop, shop_feature_pipeline(), FieldTestConfig(phones=6, budget=30), rng
        )
        assert result.schedule_average_coverage > 0.8

    def test_unknown_sensor_rejected(self, rng, clock):
        place = PlaceProfile(
            place_id="p", name="P", category="c",
            location=syracuse_coffee_shops(rng)[0].location,
        )
        with pytest.raises(ValidationError):
            build_providers(place, {"geiger"}, clock, rng)
