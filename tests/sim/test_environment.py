"""Tests for environment signal models."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.sim import (
    CompositeSignal,
    ConstantSignal,
    CrowdNoiseSignal,
    DiurnalSignal,
    OrnsteinUhlenbeckSignal,
    SinusoidSignal,
)


class TestConstant:
    def test_constant(self):
        signal = ConstantSignal(5.0)
        assert signal.value(0) == signal.value(1e6) == 5.0


class TestSinusoid:
    def test_period_and_amplitude(self):
        signal = SinusoidSignal(offset=10.0, amplitude=2.0, period_s=100.0)
        assert signal.value(0.0) == pytest.approx(10.0)
        assert signal.value(25.0) == pytest.approx(12.0)
        assert signal.value(75.0) == pytest.approx(8.0)
        assert signal.value(100.0) == pytest.approx(signal.value(0.0))

    def test_invalid_period(self):
        with pytest.raises(ValidationError):
            SinusoidSignal(0, 1, 0)


class TestDiurnal:
    def test_peaks_at_peak_hour(self):
        signal = DiurnalSignal(mean=50.0, amplitude=10.0, peak_hour=15.0)
        assert signal.value(15 * 3600.0) == pytest.approx(60.0)
        assert signal.value(3 * 3600.0) == pytest.approx(40.0)

    def test_period_is_24h(self):
        signal = DiurnalSignal(mean=0.0, amplitude=1.0)
        assert signal.value(0.0) == pytest.approx(signal.value(24 * 3600.0))


class TestOrnsteinUhlenbeck:
    def test_deterministic_after_construction(self):
        rng = np.random.default_rng(1)
        signal = OrnsteinUhlenbeckSignal(50.0, 0.01, 0.1, rng)
        assert signal.value(500.0) == signal.value(500.0)

    def test_stays_near_mean(self):
        rng = np.random.default_rng(2)
        signal = OrnsteinUhlenbeckSignal(
            50.0, 1.0 / 300.0, 0.05, rng, horizon_s=20_000.0
        )
        values = [signal.value(t) for t in np.linspace(0, 20_000, 400)]
        assert 45.0 < float(np.mean(values)) < 55.0

    def test_interpolates_between_grid_points(self):
        rng = np.random.default_rng(3)
        signal = OrnsteinUhlenbeckSignal(0.0, 0.1, 1.0, rng, step_s=10.0)
        mid = signal.value(15.0)
        low, high = signal.value(10.0), signal.value(20.0)
        assert min(low, high) - 1e-9 <= mid <= max(low, high) + 1e-9

    def test_clamps_outside_horizon(self):
        rng = np.random.default_rng(4)
        signal = OrnsteinUhlenbeckSignal(0.0, 0.1, 1.0, rng, horizon_s=100.0)
        assert signal.value(-5.0) == signal.value(0.0)
        assert signal.value(1e9) == signal.value(1e9 + 1)

    def test_zero_volatility_is_constant_mean(self):
        rng = np.random.default_rng(5)
        signal = OrnsteinUhlenbeckSignal(42.0, 0.1, 0.0, rng)
        assert signal.value(12_345.0) == pytest.approx(42.0)


class TestCrowdNoise:
    def test_base_level_when_quiet(self):
        rng = np.random.default_rng(6)
        signal = CrowdNoiseSignal(55.0, 5.0, rng, bursts_per_hour=0.0)
        assert signal.value(1000.0) == 55.0

    def test_bursts_raise_level(self):
        rng = np.random.default_rng(7)
        signal = CrowdNoiseSignal(
            55.0, 5.0, rng, bursts_per_hour=60.0, mean_burst_s=600.0
        )
        values = [signal.value(t) for t in np.linspace(0, 86_400, 2000)]
        assert max(values) > 55.0
        assert min(values) >= 55.0

    def test_busier_shop_is_louder_on_average(self):
        quiet = CrowdNoiseSignal(
            55.0, 5.0, np.random.default_rng(8), bursts_per_hour=1.0
        )
        busy = CrowdNoiseSignal(
            55.0, 5.0, np.random.default_rng(8), bursts_per_hour=30.0
        )
        grid = np.linspace(0, 86_400, 3000)
        assert np.mean([busy.value(t) for t in grid]) > np.mean(
            [quiet.value(t) for t in grid]
        )


class TestComposite:
    def test_sums_components(self):
        signal = CompositeSignal([ConstantSignal(1.0), ConstantSignal(2.0)])
        assert signal.value(0.0) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CompositeSignal([])
