"""Tests for the experiment harnesses — the paper's tables and figures."""

import pytest

from repro.experiments import (
    TABLE1_EXPECTED,
    TABLE2_EXPECTED,
    run_fig6,
    run_fig10,
    run_fig14a,
    run_fig14b,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import (
    run_aggregation_ablation,
    run_backend_ablation,
    run_lazy_ablation,
    run_multikernel_ablation,
    run_online_ablation,
    run_sigma_ablation,
    run_spam_resistance_ablation,
)
from repro.experiments.end_to_end import run_end_to_end
from repro.experiments.fig6_trail_features import format_fig6
from repro.experiments.fig14_scheduling import format_sweep
from repro.experiments.table1_trail_rankings import format_table1
from repro.experiments.table2_shop_rankings import format_table2


class TestFig6:
    def test_feature_orderings_match_ground_truth(self):
        result = run_fig6(seed=2014)
        assert result.matches_expected(), result.features

    def test_five_features_three_trails(self):
        result = run_fig6(seed=2014)
        assert len(result.features) == 3
        for features in result.features.values():
            assert len(features) == 5

    def test_format_renders(self):
        text = format_fig6(run_fig6(seed=2014))
        assert "Fig. 6" in text and "roughness" in text


class TestFig10:
    def test_feature_orderings_match_ground_truth(self):
        result = run_fig10(seed=2014)
        assert result.matches_expected(), result.features

    def test_starbucks_is_noisy_and_dark(self):
        features = run_fig10(seed=2014).features
        assert features["Starbucks"]["noise"] > features["B&N Cafe"]["noise"]
        assert features["Starbucks"]["brightness"] < features["B&N Cafe"]["brightness"]


class TestTables:
    @pytest.mark.parametrize("seed", [2014, 7, 99])
    def test_table1_matches_paper(self, seed):
        result = run_table1(seed=seed)
        assert result.matches_expected(), result.as_rows()

    @pytest.mark.parametrize("seed", [2014, 7, 99])
    def test_table2_matches_paper(self, seed):
        result = run_table2(seed=seed)
        assert result.matches_expected(), result.as_rows()

    def test_expected_constants_match_paper_text(self):
        assert TABLE1_EXPECTED["Alice"][0] == "Cliff Trail"
        assert TABLE2_EXPECTED["Emma"][-1] == "Starbucks"

    def test_formatting(self):
        assert "matches paper: YES" in format_table1(run_table1(seed=2014))
        assert "matches paper: YES" in format_table2(run_table2(seed=2014))


class TestFig14:
    def test_fig14a_shapes(self):
        """Greedy dominates, grows with users, baseline ≈ 0.5 at 40."""
        result = run_fig14a(runs=3, seed=0)
        for point in result.points:
            assert point.greedy_mean > point.baseline_mean
        greedy = [point.greedy_mean for point in result.points]
        assert greedy == sorted(greedy)  # increasing with users
        at_40 = next(point for point in result.points if point.x == 40)
        assert at_40.baseline_mean == pytest.approx(0.5, abs=0.1)
        assert at_40.greedy_mean > 0.8
        at_50 = next(point for point in result.points if point.x == 50)
        assert at_50.greedy_mean > 0.9  # "almost 100% by ~50–55 users"

    def test_fig14b_shapes(self):
        result = run_fig14b(runs=3, seed=0)
        for point in result.points:
            assert point.greedy_mean > point.baseline_mean
        greedy = [point.greedy_mean for point in result.points]
        assert greedy == sorted(greedy)  # increasing with budget

    def test_headline_improvement_magnitude(self):
        """Paper: 65% average improvement; we require the same order."""
        result = run_fig14a(runs=2, seed=1)
        assert result.mean_improvement > 0.4

    def test_format(self):
        text = format_sweep(run_fig14a(runs=1, seed=0), "test")
        assert "mean improvement" in text


class TestAblations:
    def test_sigma_monotone_coverage(self):
        points = run_sigma_ablation(sigmas=(5.0, 30.0), runs=2)
        assert points[1].greedy_coverage > points[0].greedy_coverage
        for point in points:
            assert point.greedy_coverage >= point.baseline_coverage

    def test_lazy_identical_and_faster_at_scale(self):
        # Reference backend: the lazy heap vs the paper's O(N²) loop.
        points = run_lazy_ablation(instant_counts=(360, 1080))
        assert all(point.identical_schedules for point in points)
        assert points[-1].speedup > 2.0

    def test_backend_identical_and_numpy_faster_at_scale(self):
        # Correctness tier asserts identity plus a conservative speedup
        # margin; the ≥10× headline gate lives in the benchmark suite
        # where timing noise is controlled.
        points = run_backend_ablation(instant_counts=(360, 1000))
        assert all(point.identical_schedules for point in points)
        assert points[-1].speedup > 1.5

    def test_aggregation_quality_ordering(self):
        stats = run_aggregation_ablation(instances=15, num_items=5)
        assert stats.footrule_ratio <= 2.0  # the theoretical guarantee
        assert stats.refined_ratio <= stats.footrule_ratio + 1e-9
        assert stats.footrule_optimal_fraction > 0.3

    def test_online_close_to_offline(self):
        points = run_online_ablation(user_counts=(20, 40), runs=2)
        for point in points:
            assert 0.8 <= point.ratio <= 1.02

    def test_multikernel_blend_wins_on_blend_value(self):
        points = run_multikernel_ablation(runs=2, users=10)
        by_name = {point.strategy: point for point in points}
        blended = by_name["blended kernels"]
        for point in points:
            assert blended.blended_value >= point.blended_value - 1e-6

    def test_spam_resistance_minority_regime(self):
        points = run_spam_resistance_ablation(instances=10, seed=1)
        minority = next(point for point in points if point.spam_weight == 3)
        assert minority.footrule_drift <= minority.borda_drift + 1e-9
        # drift grows with spam weight for both aggregators
        assert points[-1].borda_drift >= points[0].borda_drift


class TestEndToEnd:
    def test_runs_and_matches_table2(self):
        result = run_end_to_end(seed=42, phones_per_shop=6, budget=15)
        assert result.rankings["David"] == ["Starbucks", "B&N Cafe", "Tim Hortons"]
        assert result.rankings["Emma"] == ["B&N Cafe", "Tim Hortons", "Starbucks"]
        assert result.messages_sent > 0
        assert result.blobs_decoded == 18
        assert result.total_phone_energy_mj > 0
