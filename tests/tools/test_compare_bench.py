"""Property tests for ``benchmarks/compare_bench.py`` — the perf gate.

The gate script guards every benchmark job (and now the ablation
importance gate), so its comparison semantics get property-level
coverage: direction symmetry of ``regression_pct``, the zero-baseline
guard, exact behavior at the tolerance boundary, missing-metric
failures, and the identity ``compare(x, x)`` never failing. The module
is loaded from the benchmarks directory the same way CI runs it, so the
tests exercise the shipped file rather than a copy.
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st


def _load_compare_bench():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
    spec = importlib.util.spec_from_file_location("compare_bench_tools", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load_compare_bench()

finite_values = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)
directions = st.sampled_from(["lower", "higher"])


# ----------------------------------------------------------------------
# regression_pct
# ----------------------------------------------------------------------
class TestRegressionPct:
    @given(baseline=finite_values, fresh=finite_values)
    @settings(max_examples=100, deadline=None)
    def test_directions_are_mirror_images(self, baseline, fresh):
        """lower-is-better regression == −(higher-is-better regression)."""
        lower = compare_bench.regression_pct("lower", baseline, fresh)
        higher = compare_bench.regression_pct("higher", baseline, fresh)
        assert math.isclose(lower, -higher, rel_tol=1e-12, abs_tol=1e-12)

    @given(direction=directions, fresh=finite_values)
    @settings(max_examples=50, deadline=None)
    def test_zero_baseline_never_divides(self, direction, fresh):
        assert compare_bench.regression_pct(direction, 0.0, fresh) == 0.0

    @given(direction=directions, value=finite_values)
    @settings(max_examples=50, deadline=None)
    def test_identical_values_mean_zero_regression(self, direction, value):
        assert compare_bench.regression_pct(direction, value, value) == 0.0

    @given(baseline=finite_values, fresh=finite_values)
    @settings(max_examples=100, deadline=None)
    def test_improvement_is_never_positive(self, baseline, fresh):
        """A fresh value on the better side never reads as a regression."""
        slower, faster = max(baseline, fresh), min(baseline, fresh)
        assert compare_bench.regression_pct("lower", slower, faster) <= 0.0
        assert compare_bench.regression_pct("higher", faster, slower) <= 0.0

    @given(baseline=finite_values)
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, baseline):
        """Doubling a lower-is-better metric is always +100%."""
        assert math.isclose(
            compare_bench.regression_pct("lower", baseline, 2 * baseline),
            100.0,
            rel_tol=1e-9,
        )


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def _metric(value, direction="lower", tolerance_pct=20.0):
    return {
        "value": value,
        "direction": direction,
        "tolerance_pct": tolerance_pct,
    }


metric_sets = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ),
    st.builds(
        _metric,
        value=finite_values,
        direction=directions,
        tolerance_pct=st.floats(min_value=0.0, max_value=90.0),
    ),
    min_size=1,
    max_size=6,
)


class TestCompare:
    @given(metrics=metric_sets)
    @settings(max_examples=60, deadline=None)
    def test_self_comparison_never_fails(self, metrics):
        lines, failures = compare_bench.compare(metrics, metrics)
        assert failures == []
        assert len(lines) == len(metrics)

    @given(baseline=finite_values, tolerance=st.floats(min_value=1.0, max_value=80.0))
    @settings(max_examples=60, deadline=None)
    def test_exactly_at_tolerance_passes(self, baseline, tolerance):
        """The gate is ``delta > tolerance``: the boundary itself is OK."""
        fresh_value = baseline * (1.0 + tolerance / 100.0)
        base = {"m": _metric(baseline, "lower", tolerance)}
        delta = compare_bench.regression_pct("lower", baseline, fresh_value)
        fresh = {"m": _metric(fresh_value, "lower", tolerance)}
        _, failures = compare_bench.compare(base, fresh)
        if delta <= tolerance:  # float rounding may land a hair past
            assert failures == []
        else:
            assert len(failures) == 1

    @given(baseline=finite_values, tolerance=st.floats(min_value=1.0, max_value=80.0))
    @settings(max_examples=60, deadline=None)
    def test_past_tolerance_fails_both_directions(self, baseline, tolerance):
        factor = 1.0 + (tolerance + 1.0) / 100.0
        worse_lower = {"m": _metric(baseline * factor, "lower", tolerance)}
        base_lower = {"m": _metric(baseline, "lower", tolerance)}
        _, failures = compare_bench.compare(base_lower, worse_lower)
        assert len(failures) == 1
        drop = (tolerance + 1.0) / 100.0
        worse_higher = {"m": _metric(baseline * (1.0 - drop), "higher", tolerance)}
        base_higher = {"m": _metric(baseline, "higher", tolerance)}
        _, failures = compare_bench.compare(base_higher, worse_higher)
        assert len(failures) == 1

    @given(metrics=metric_sets)
    @settings(max_examples=40, deadline=None)
    def test_baseline_only_metrics_fail(self, metrics):
        """Every metric the fresh run dropped is a failure, not a skip."""
        _, failures = compare_bench.compare(metrics, {})
        assert len(failures) == len(metrics)
        for failure in failures:
            assert "missing from fresh run" in failure

    @given(metrics=metric_sets)
    @settings(max_examples=40, deadline=None)
    def test_fresh_only_metrics_are_reported_not_failed(self, metrics):
        lines, failures = compare_bench.compare({}, metrics)
        assert failures == []
        assert all("no baseline" in line for line in lines)


# ----------------------------------------------------------------------
# load_metrics round-trips
# ----------------------------------------------------------------------
class TestLoadMetrics:
    @given(metrics=metric_sets)
    @settings(max_examples=30, deadline=None)
    def test_gate_schema_round_trips(self, metrics):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "BENCH_x.json"
            path.write_text(json.dumps({"metrics": metrics}))
            loaded = compare_bench.load_metrics(path, 20.0)
        assert set(loaded) == set(metrics)
        for name, entry in metrics.items():
            assert loaded[name]["value"] == entry["value"]
            assert loaded[name]["direction"] == entry["direction"]
            assert loaded[name]["tolerance_pct"] == entry["tolerance_pct"]

    @given(
        means=st.dictionaries(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
            finite_values,
            min_size=1,
            max_size=5,
        ),
        default_tolerance=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pytest_bench_schema_round_trips(self, means, default_tolerance):
        import tempfile

        payload = {name: {"mean": value, "rounds": 1} for name, value in means.items()}
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "bench.json"
            path.write_text(json.dumps(payload))
            loaded = compare_bench.load_metrics(path, default_tolerance)
        assert set(loaded) == set(means)
        for name, value in means.items():
            assert loaded[name]["value"] == value
            assert loaded[name]["direction"] == "lower"
            assert loaded[name]["tolerance_pct"] == default_tolerance

    def test_gate_schema_defaults(self):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "BENCH_x.json"
            path.write_text(
                json.dumps({"metrics": {"m": {"value": 3.0}}})
            )
            loaded = compare_bench.load_metrics(path, 33.0)
        assert loaded["m"] == {
            "value": 3.0,
            "direction": "lower",
            "tolerance_pct": 33.0,
        }
