"""Documentation quality gate.

Every public module, class and function in ``repro`` must carry a
docstring — deliverable (e) of the reproduction requires doc comments on
every public item, and this test keeps that true as the code evolves.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _walk_modules()


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; documented at home
        yield name, member


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} has no docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_every_package_reachable():
    """The walk actually covered the whole tree (guards against silent
    import failures hiding modules from the docstring checks)."""
    names = {module.__name__ for module in MODULES}
    for expected in (
        "repro.core.scheduling.greedy",
        "repro.core.ranking.aggregate",
        "repro.core.features.extractors",
        "repro.phone.frontend",
        "repro.server.server",
        "repro.script.interpreter",
        "repro.sim.fieldtest",
        "repro.db.table",
        "repro.net.codec",
        "repro.barcode.reed_solomon",
        "repro.experiments.fig14_scheduling",
    ):
        assert expected in names
