#!/usr/bin/env python3
"""Extend SOR: a new place category, a new sensor, a custom profile.

The paper's architecture claims ("its architecture is so scalable that
various embedded and external sensors can be easily integrated"): adding
a sensor takes one Provider; adding a category takes one feature
pipeline. This example ranks three *libraries* using a CO₂ gas sensor
(a Sensordrone channel the built-in scenarios don't use) plus noise:

* defines PlaceProfiles for three libraries with CO₂/noise ground truth,
* deploys them through the full SORSystem (barcodes, scripts, HTTP),
* ranks them for a user who wants fresh air and silence.

Run:  python examples/custom_deployment.py
"""

import numpy as np

from repro.common.geo import LatLon
from repro.core.features import FeaturePipeline, FeatureSpec, MeanExtractor
from repro.core.ranking import MIN, FeaturePreference, PreferenceProfile
from repro.server import SORSystem
from repro.server.visualization import bar_chart, feature_table
from repro.sim.environment import CrowdNoiseSignal, OrnsteinUhlenbeckSignal
from repro.sim.places import PlaceProfile

LIBRARIES = [
    # (id, name, co2 ppm, noise dB, bursts/h)
    ("bird-library", "Bird Library", 650.0, 45.0, 1.0),
    ("carnegie-reading-room", "Carnegie Reading Room", 480.0, 40.0, 0.3),
    ("sci-tech-library", "Sci-Tech Library", 900.0, 52.0, 4.0),
]


def build_places(rng: np.random.Generator) -> list[PlaceProfile]:
    places = []
    for index, (place_id, name, co2, noise, bursts) in enumerate(LIBRARIES):
        places.append(
            PlaceProfile(
                place_id=place_id,
                name=name,
                category="library",
                location=LatLon(43.037 + index * 0.002, -76.135),
                signals={
                    "gas_co": OrnsteinUhlenbeckSignal(
                        mean=co2, reversion_rate=1 / 600.0, volatility=0.2, rng=rng
                    ),
                    "microphone": CrowdNoiseSignal(
                        base_level=noise, burst_gain=6.0, rng=rng,
                        bursts_per_hour=bursts,
                    ),
                },
                surface_roughness=0.01,
            )
        )
    return places


def main() -> None:
    # A brand-new category needs only a feature pipeline: which sensors
    # feed which humanly understandable features.
    pipeline = FeaturePipeline(
        [
            FeatureSpec("air_quality_co2", "gas_co", MeanExtractor()),
            FeatureSpec("noise", "microphone", MeanExtractor()),
        ]
    )

    system = SORSystem(seed=7)
    rng = np.random.default_rng(7)
    for place in build_places(rng):
        system.deploy_place(place, pipeline)
        for _ in range(5):
            system.deploy_phone(place.place_id, budget=20)

    print("Running the library deployment...")
    system.run()

    # A user who wants fresh air above all, then silence.
    scholar = PreferenceProfile(
        "Scholar",
        {
            "air_quality_co2": FeaturePreference(MIN, 5),
            "noise": FeaturePreference(MIN, 3),
        },
    )
    reports = system.process_and_rank("library", [scholar])
    names = {pid: d.place.name for pid, d in system.places.items()}

    features = {
        names[pid]: values
        for pid, values in system.feature_values("library").items()
    }
    print()
    print(feature_table(features, pipeline.feature_names))
    print()
    print(bar_chart(
        "CO2 (ppm, lower is better)",
        {name: values["air_quality_co2"] for name, values in features.items()},
    ))
    report = reports["Scholar"]
    print(f"\nRanking for {report.profile_name}:")
    for rank, place_id in enumerate(report.ranking.items, start=1):
        print(f"  {rank}. {names[place_id]}")
    print(f"\n(weighted footrule distance of the aggregate: "
          f"{report.weighted_footrule:.1f}, "
          f"weighted Kemeny: {report.weighted_kemeny:.1f})")


if __name__ == "__main__":
    main()
