#!/usr/bin/env python3
"""Blend SOR's objective rankings with Yelp-style subjective ratings.

The paper positions SOR as an *enhancement* of subjective recommendation
systems, not a replacement (Section I). This example shows the
integration: the coffee-shop feature data feeds the objective pipeline,
a (synthetic) star-rating source contributes one more individual
ranking, and the min-cost-flow aggregation blends both according to how
much the user trusts the crowd.

Run:  python examples/hybrid_rankings.py
"""

from repro.core.features import build_feature_matrix
from repro.core.ranking import (
    aggregate_hybrid,
    individual_rankings,
    preference_distance_matrix,
)
from repro.experiments.fig10_shop_features import run_fig10
from repro.sim.scenarios import customer_profiles, shop_feature_pipeline

# What "the crowd" thinks (Yelp-style mean stars) — deliberately at odds
# with Emma's objective preferences: the noisy Starbucks is popular.
CROWD_STARS = {
    "Tim Hortons": 3.4,
    "B&N Cafe": 3.9,
    "Starbucks": 4.6,
}


def main() -> None:
    print("Collecting objective feature data (simulated field test)...")
    fig10 = run_fig10(seed=2014)
    pipeline = shop_feature_pipeline()
    emma = next(p for p in customer_profiles() if p.name == "Emma")

    active = [name for name in pipeline.feature_names if emma.weight(name) > 0]
    matrix, place_ids = build_feature_matrix(fig10.features, active)
    gamma = preference_distance_matrix(matrix, active, emma)
    objective = individual_rankings(gamma, place_ids)

    print(f"\ncrowd ratings: {CROWD_STARS}")

    print("\n-- Emma with her full Table II weights "
          f"({[emma.weight(n) for n in active]}) --")
    strong_weights = [emma.weight(name) for name in active]
    for trust in (0, 5):
        blended = aggregate_hybrid(
            objective, strong_weights, CROWD_STARS, subjective_weight=trust
        )
        print(f"  subjective weight {trust}: {list(blended.items)}")
    print("  Her objective preferences are emphatic (total weight "
          f"{sum(strong_weights)}), so even full trust in the crowd "
          "cannot push the noisy Starbucks up.")

    print("\n-- Emma holding each objective feature lightly (weight 1) --")
    light_weights = [1] * len(active)
    print(f"{'subjective weight':>18}  blended ranking")
    for trust in range(0, 6):
        blended = aggregate_hybrid(
            objective, light_weights, CROWD_STARS, subjective_weight=trust
        )
        print(f"{trust:>18}  {list(blended.items)}")
    print(
        "\nAt weight 0 the objective Table II order holds "
        "(B&N, Tim Hortons, Starbucks); as trust in the crowd grows, the "
        "popular-but-noisy Starbucks climbs to the top."
    )


if __name__ == "__main__":
    main()
