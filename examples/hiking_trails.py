#!/usr/bin/env python3
"""Reproduce the hiking-trail field test (paper Section V-A).

Simulates 7 phones hiking each of the three Syracuse trails from
11:00 to 14:00, extracts the five features of Fig. 6, prints them as
bar charts, and computes Table I's personalized rankings for the three
virtual hikers Alice, Bob and Chris (Fig. 7 profiles).

Run:  python examples/hiking_trails.py
"""

from repro.experiments.fig6_trail_features import FEATURE_ORDER, run_fig6
from repro.experiments.table1_trail_rankings import format_table1, run_table1
from repro.server.visualization import bar_chart, feature_table, to_csv
from repro.sim.scenarios import hiker_profiles


def main() -> None:
    print("Running simulated field tests on three hiking trails "
          "(7 phones each, 11:00-14:00)...")
    fig6 = run_fig6(seed=2014)

    print("\n--- Fig. 6: feature data ---")
    print(feature_table(fig6.features, FEATURE_ORDER))
    for feature in FEATURE_ORDER:
        values = {name: fig6.features[name][feature] for name in fig6.features}
        print()
        print(bar_chart(feature, values))

    print("\n--- Hiker profiles (Fig. 7) ---")
    for profile in hiker_profiles():
        preferences = ", ".join(
            f"{name}={profile.preference(name).preferred}/w{profile.weight(name)}"
            for name in profile.feature_names
            if profile.weight(name) > 0
        )
        print(f"{profile.name}: {preferences}")

    print("\n--- Table I: personalized rankings ---")
    table1 = run_table1(fig6=fig6)
    print(format_table1(table1))

    print("\n--- CSV export (Visualization module) ---")
    print(to_csv(fig6.features, FEATURE_ORDER))


if __name__ == "__main__":
    main()
