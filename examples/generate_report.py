#!/usr/bin/env python3
"""Generate the full reproduction report with SVG figures.

Runs every paper experiment and writes ``report.md`` plus one SVG per
figure panel and CSV exports of the feature data into an output
directory (default: ``./sor-report``).

Run:  python examples/generate_report.py [output-dir] [sweep-runs]
"""

import sys

from repro.experiments.report import write_report


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "sor-report"
    sweep_runs = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    print(f"Writing report to {output_dir}/ ({sweep_runs} runs per sweep point)...")
    report = write_report(output_dir, sweep_runs=sweep_runs)
    print(f"Done: {report}")
    print("Artifacts:")
    for path in sorted(report.parent.iterdir()):
        print(f"  {path.name}")


if __name__ == "__main__":
    main()
