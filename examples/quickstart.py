#!/usr/bin/env python3
"""Quickstart: the two SOR algorithms in ~60 lines.

1. Schedule sensing for a crowd of mobile users with the greedy
   coverage-maximizing scheduler (paper Section III) and compare it with
   the paper's periodic baseline.
2. Rank three places for a user's preferences with the personalizable
   ranking algorithm (paper Section IV).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.ranking import (
    MAX,
    MIN,
    FeaturePreference,
    PreferenceProfile,
    aggregate_footrule,
    individual_rankings,
    preference_distance_matrix,
)
from repro.core.scheduling import (
    GaussianKernel,
    GreedyScheduler,
    PeriodicBaselineScheduler,
    SchedulingPeriod,
    SchedulingProblem,
)
from repro.sim.arrivals import uniform_arrivals


def schedule_demo() -> None:
    print("=== 1. Sensing scheduling (Section III) ===")
    # A 3-hour scheduling period divided into 1080 ten-second instants,
    # exactly the paper's simulation setup.
    period = SchedulingPeriod(start=0.0, end=10_800.0, num_instants=1080)
    rng = np.random.default_rng(0)
    users = uniform_arrivals(count=30, period_s=10_800.0, budget=17, rng=rng)
    problem = SchedulingProblem(period, users, GaussianKernel(sigma=10.0))

    greedy = GreedyScheduler().solve(problem)
    baseline = PeriodicBaselineScheduler(interval_s=10.0).solve(problem)
    print(f"greedy   average coverage: {greedy.average_coverage:.3f}")
    print(f"baseline average coverage: {baseline.average_coverage:.3f}")
    improvement = (
        (greedy.average_coverage - baseline.average_coverage)
        / baseline.average_coverage
    )
    print(f"improvement: {improvement:+.0%}")
    one_user = users[0].user_id
    times = greedy.times_for(one_user)[:5]
    print(f"{one_user} senses at (first 5): {[f'{t:.0f}s' for t in times]}")


def ranking_demo() -> None:
    print("\n=== 2. Personalizable ranking (Section IV) ===")
    # The H matrix: three coffee shops × three features.
    feature_names = ["temperature", "noise", "wifi"]
    H = np.array(
        [
            # temp °F, noise dB, wifi dBm
            [66.0, 58.0, -60.0],  # Tim Hortons
            [72.0, 55.0, -55.0],  # B&N Cafe
            [75.0, 72.0, -65.0],  # Starbucks
        ]
    )
    places = ["Tim Hortons", "B&N Cafe", "Starbucks"]

    # A studious user: warm, quiet, strong Wi-Fi.
    emma = PreferenceProfile(
        "Emma",
        {
            "temperature": FeaturePreference(73.0, 3),
            "noise": FeaturePreference(MIN, 5),
            "wifi": FeaturePreference(MAX, 3),
        },
    )
    gamma = preference_distance_matrix(H, feature_names, emma)
    individual = individual_rankings(gamma, places)
    weights = [emma.weight(name) for name in feature_names]
    final = aggregate_footrule(individual, weights)
    for feature, ranking in zip(feature_names, individual):
        print(f"individual ranking on {feature:<12}: {list(ranking.items)}")
    print(f"aggregated ranking for {emma.name}: {list(final.items)}")


if __name__ == "__main__":
    schedule_demo()
    ranking_demo()
