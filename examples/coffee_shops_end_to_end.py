#!/usr/bin/env python3
"""The coffee-shop study through the FULL SOR system (Sections II + V-B).

Unlike examples/hiking_trails.py (which calls the algorithms directly),
this example runs the complete deployed system on a discrete-event
simulator:

* a sensing server with its mini relational database,
* a 2D barcode (with Reed–Solomon error correction) printed per shop —
  one is rendered below,
* 12 phones per shop that scan the barcode, receive a LuaLite sensing
  script plus a greedy schedule over HTTP (binary message bodies),
  execute the script at each scheduled instant, and upload readings,
* server-side decoding, feature computation and personalizable ranking.

Run:  python examples/coffee_shops_end_to_end.py
"""

import numpy as np

from repro.server import SORSystem
from repro.server.visualization import feature_table
from repro.sim.scenarios import (
    customer_profiles,
    shop_feature_pipeline,
    syracuse_coffee_shops,
)


def main() -> None:
    system = SORSystem(seed=42)
    rng = np.random.default_rng(42)
    pipeline = shop_feature_pipeline()

    print("Deploying applications and barcodes...")
    for shop in syracuse_coffee_shops(rng):
        deployed = system.deploy_place(shop, pipeline)
        for _ in range(12):
            system.deploy_phone(shop.place_id, budget=30)
        if shop.place_id == "starbucks":
            print(f"\nThe 2D barcode at {shop.name} "
                  f"({deployed.barcode.size}x{deployed.barcode.size} modules):")
            print(deployed.barcode.to_text(dark="##", light="  "))

    print("\nThe LuaLite sensing script the server ships to phones:")
    print(system.places["starbucks"].application.script)

    print("\nRunning the 3-hour deployment on the event simulator...")
    system.run()

    stats = system.network.stats
    print(f"HTTP requests: {stats.requests_sent}  "
          f"bytes up: {stats.bytes_sent}  bytes down: {stats.bytes_received}")

    print("\nDecoding uploads and ranking...")
    reports = system.process_and_rank("coffee_shop", customer_profiles())

    names = {pid: d.place.name for pid, d in system.places.items()}
    features = {
        names[pid]: values
        for pid, values in system.feature_values("coffee_shop").items()
    }
    print("\n--- Fig. 10: feature data (via the full protocol) ---")
    print(feature_table(features, pipeline.feature_names))

    print("\n--- Table II: personalized rankings ---")
    for user, report in reports.items():
        ranked = [names[pid] for pid in report.ranking.items]
        print(f"{user:<8}" + "".join(f"{place:<16}" for place in ranked))

    total_energy = sum(
        d.phone.battery.capacity_mj - d.phone.battery.remaining_mj
        for d in system.phones
    )
    print(f"\nTotal phone energy spent: {total_energy:.0f} mJ "
          f"across {len(system.phones)} phones")


if __name__ == "__main__":
    main()
