#!/usr/bin/env python3
"""Reproduce the scheduling simulation (paper Section V-C, Fig. 14).

Sweeps the number of mobile users (Fig. 14a) and the per-user sensing
budget (Fig. 14b), comparing the greedy 1/2-approximation scheduler with
the paper's every-10-seconds baseline, and prints both series plus an
ASCII rendering of the coverage curves.

Run:  python examples/scheduling_simulation.py [runs-per-point]
"""

import sys

from repro.experiments.fig14_scheduling import (
    format_sweep,
    run_fig14a,
    run_fig14b,
)


def ascii_plot(result, *, height: int = 12, title: str = "") -> str:
    """Tiny ASCII chart: G = greedy, b = baseline."""
    lines = [title]
    xs = [point.x for point in result.points]
    for level in range(height, -1, -1):
        threshold = level / height
        row = f"{threshold:>5.2f} |"
        for point in result.points:
            greedy_here = abs(point.greedy_mean - threshold) <= 0.5 / height
            baseline_here = abs(point.baseline_mean - threshold) <= 0.5 / height
            if greedy_here and baseline_here:
                row += " * "
            elif greedy_here:
                row += " G "
            elif baseline_here:
                row += " b "
            else:
                row += "   "
        lines.append(row)
    lines.append("      +" + "---" * len(xs))
    lines.append("       " + "".join(f"{x:^3}" for x in xs))
    lines.append(f"       {result.x_label}   (G = greedy, b = baseline)")
    return "\n".join(lines)


def main() -> None:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(f"Running Fig. 14 sweeps with {runs} runs per point "
          "(paper uses 10)...\n")

    fig14a = run_fig14a(runs=runs)
    print(format_sweep(fig14a, "Fig. 14(a) — average coverage vs #users"))
    print()
    print(ascii_plot(fig14a, title="Fig. 14(a)"))

    print()
    fig14b = run_fig14b(runs=runs)
    print(format_sweep(fig14b, "Fig. 14(b) — average coverage vs budget"))
    print()
    print(ascii_plot(fig14b, title="Fig. 14(b)"))

    overall = (fig14a.mean_improvement + fig14b.mean_improvement) / 2
    print(f"\nOverall mean improvement of greedy over baseline: "
          f"{overall:.0%} (paper reports 65%)")


if __name__ == "__main__":
    main()
