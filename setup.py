"""Legacy shim so editable installs work on machines without `wheel`.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
